//! Descriptive statistics over (possibly missing) time-series values.
//!
//! The paper uses the Pearson correlation (Section 5.1) to characterise how
//! "linearly correlated" a reference series is with the incomplete series,
//! and the experiments report root-mean-square errors.  These helpers are
//! shared by the analysis experiments, the dataset generators and the
//! baseline algorithms.

use crate::errors::TsError;

/// Arithmetic mean of a slice; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance (`1/n`) of a slice; `None` for an empty slice.
pub fn population_variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn population_std(values: &[f64]) -> Option<f64> {
    population_variance(values).map(f64::sqrt)
}

/// Pearson correlation coefficient between two equal-length slices
/// (Section 5.1, Eq. for ρ(s, r)).
///
/// Returns `0.0` when either series is constant (zero variance), matching the
/// interpretation "not linearly correlated".
pub fn pearson(s: &[f64], r: &[f64]) -> Result<f64, TsError> {
    if s.len() != r.len() {
        return Err(TsError::LengthMismatch {
            left: s.len(),
            right: r.len(),
            context: "pearson correlation",
        });
    }
    if s.is_empty() {
        return Err(TsError::invalid("values", "pearson of empty slices"));
    }
    let ms = mean(s).expect("non-empty");
    let mr = mean(r).expect("non-empty");
    let mut num = 0.0;
    let mut den_s = 0.0;
    let mut den_r = 0.0;
    for (a, b) in s.iter().zip(r.iter()) {
        let ds = a - ms;
        let dr = b - mr;
        num += ds * dr;
        den_s += ds * ds;
        den_r += dr * dr;
    }
    if den_s == 0.0 || den_r == 0.0 {
        return Ok(0.0);
    }
    Ok(num / (den_s.sqrt() * den_r.sqrt()))
}

/// Pearson correlation computed only over indices where both series are
/// observed. Returns `0.0` if fewer than two common points exist.
pub fn pearson_observed(s: &[Option<f64>], r: &[Option<f64>]) -> Result<f64, TsError> {
    if s.len() != r.len() {
        return Err(TsError::LengthMismatch {
            left: s.len(),
            right: r.len(),
            context: "pearson correlation (observed)",
        });
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (a, b) in s.iter().zip(r.iter()) {
        if let (Some(x), Some(y)) = (a, b) {
            xs.push(*x);
            ys.push(*y);
        }
    }
    if xs.len() < 2 {
        return Ok(0.0);
    }
    pearson(&xs, &ys)
}

/// Five-number style summary of a slice of observed values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of observed values.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes a summary over the observed entries of an optional slice.
    /// Returns `None` if no entry is observed.
    pub fn of_observed(values: &[Option<f64>]) -> Option<Summary> {
        let dense: Vec<f64> = values.iter().flatten().copied().collect();
        Summary::of(&dense)
    }

    /// Computes a summary of a dense slice. Returns `None` if empty.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mean = mean(values)?;
        let std = population_std(values)?;
        let mut min = values[0];
        let mut max = values[0];
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Some(Summary {
            count: values.len(),
            mean,
            std,
            min,
            max,
        })
    }

    /// Value range (max - min).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Simple rolling mean with a fixed window, used for smoothing diagnostics.
///
/// Missing inputs are skipped (they neither contribute to the numerator nor
/// to the denominator).
#[derive(Clone, Debug)]
pub struct RollingMean {
    window: usize,
    values: std::collections::VecDeque<Option<f64>>,
}

impl RollingMean {
    /// Creates a rolling mean over the last `window` samples.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must be positive");
        RollingMean {
            window,
            values: std::collections::VecDeque::with_capacity(window),
        }
    }

    /// Pushes the next sample and returns the current mean of the window
    /// (ignoring missing entries), or `None` if all entries are missing.
    pub fn push(&mut self, value: Option<f64>) -> Option<f64> {
        if self.values.len() == self.window {
            self.values.pop_front();
        }
        self.values.push_back(value);
        let observed: Vec<f64> = self.values.iter().flatten().copied().collect();
        mean(&observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(population_variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(population_variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(population_std(&[2.0, 4.0]), Some(1.0));
    }

    #[test]
    fn pearson_of_perfectly_correlated_series_is_one() {
        // Example 5 of the paper: r1 = 1.5 * s + 1 is perfectly linearly
        // correlated with s even though amplitude and offset differ.
        let s: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let r: Vec<f64> = s.iter().map(|v| 1.5 * v + 1.0).collect();
        let rho = pearson(&s, &r).unwrap();
        assert!((rho - 1.0).abs() < 1e-12, "rho = {rho}");
        let rneg: Vec<f64> = s.iter().map(|v| -2.0 * v + 0.3).collect();
        assert!((pearson(&s, &rneg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_quarter_shifted_sine_is_near_zero() {
        // Example 6: a 90° phase shift drives the Pearson correlation to ~0.
        let n = 1440usize;
        let period = 360.0;
        let s: Vec<f64> = (0..n)
            .map(|t| (t as f64 / period * std::f64::consts::TAU).sin())
            .collect();
        let r: Vec<f64> = (0..n)
            .map(|t| ((t as f64 - 90.0) / period * std::f64::consts::TAU).sin())
            .collect();
        let rho = pearson(&s, &r).unwrap();
        assert!(rho.abs() < 0.05, "rho = {rho}");
    }

    #[test]
    fn pearson_error_cases() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(pearson(&[], &[]).is_err());
        // constant series => 0 by convention
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn pearson_observed_skips_missing_pairs() {
        let s = vec![Some(1.0), None, Some(3.0), Some(4.0)];
        let r = vec![Some(2.0), Some(9.0), None, Some(8.0)];
        // Only indices 0 and 3 are commonly observed -> perfect correlation
        let rho = pearson_observed(&s, &r).unwrap();
        assert!((rho - 1.0).abs() < 1e-12);
        // fewer than 2 common points -> 0
        let rho = pearson_observed(&[Some(1.0), None], &[None, Some(1.0)]).unwrap();
        assert_eq!(rho, 0.0);
        assert!(pearson_observed(&[None], &[None, None]).is_err());
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.range(), 3.0);
        assert!(Summary::of(&[]).is_none());

        let so = Summary::of_observed(&[Some(5.0), None, Some(7.0)]).unwrap();
        assert_eq!(so.count, 2);
        assert_eq!(so.mean, 6.0);
        assert!(Summary::of_observed(&[None, None]).is_none());
    }

    #[test]
    fn rolling_mean_window_behaviour() {
        let mut rm = RollingMean::new(3);
        assert_eq!(rm.push(Some(3.0)), Some(3.0));
        assert_eq!(rm.push(Some(5.0)), Some(4.0));
        assert_eq!(rm.push(None), Some(4.0));
        assert_eq!(rm.push(Some(1.0)), Some(3.0)); // window = [5, None, 1]
        assert_eq!(rm.push(None), Some(1.0)); // window = [None, 1, None]
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rolling_mean_zero_window_panics() {
        let _ = RollingMean::new(0);
    }
}
