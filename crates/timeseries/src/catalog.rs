//! Catalog of series and candidate reference series.
//!
//! Section 3 of the paper: for each series `s` there is an *ordered sequence*
//! of candidate reference time series, identified by domain experts and
//! ranked by how suitable they are for imputing `s`.  At imputation time the
//! reference set `R_s` consists of the first `d` candidates whose current
//! value is not missing (Example 1: at 14:20 `R_s = {r1, r2}`, but at 13:40
//! it was `{r1, r3}` because `r2` was missing then).
//!
//! The [`Catalog`] stores these rankings and performs the per-tick selection.
//! It can also *derive* rankings automatically from historical data by
//! ranking candidates by absolute Pearson correlation — the paper lists this
//! automation as future work, and it is what we use for the synthetic
//! datasets where no domain expert exists.

use std::collections::BTreeMap;

use crate::errors::TsError;
use crate::series::SeriesId;
use crate::stats::pearson_observed;

/// Result of selecting the reference set `R_s` for one series at one tick.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReferenceSelection {
    /// The incomplete series the selection is for.
    pub target: SeriesId,
    /// The selected reference series, at most `d`, in ranking order.
    pub references: Vec<SeriesId>,
    /// Candidates that were skipped because their current value is missing.
    pub skipped: Vec<SeriesId>,
}

impl ReferenceSelection {
    /// Whether the requested number of references could be selected.
    pub fn is_complete(&self, d: usize) -> bool {
        self.references.len() == d
    }
}

/// Per-series ordered candidate reference lists.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    /// `candidates[s]` is the ranked candidate list for series `s`.
    /// (`pub(crate)` for the snapshot codec in `persist`.)
    pub(crate) candidates: BTreeMap<SeriesId, Vec<SeriesId>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Sets the ranked candidate list for a series (earlier = better).
    ///
    /// Returns an error if the list contains the series itself or duplicates.
    pub fn set_candidates(
        &mut self,
        series: SeriesId,
        ranked: Vec<SeriesId>,
    ) -> Result<(), TsError> {
        if ranked.contains(&series) {
            return Err(TsError::invalid(
                "candidates",
                format!("series {series} cannot reference itself"),
            ));
        }
        let mut seen = std::collections::BTreeSet::new();
        for id in &ranked {
            if !seen.insert(*id) {
                return Err(TsError::invalid(
                    "candidates",
                    format!("duplicate candidate {id} for series {series}"),
                ));
            }
        }
        self.candidates.insert(series, ranked);
        Ok(())
    }

    /// The ranked candidate list of a series (empty if none registered).
    pub fn candidates(&self, series: SeriesId) -> &[SeriesId] {
        self.candidates
            .get(&series)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of series with a registered candidate list.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether no candidate list is registered.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Selects the reference set `R_s`: the first `d` candidates of `series`
    /// that are *alive* according to `is_alive` (typically: their value at
    /// the current time `t_n` is not missing).
    pub fn select_references(
        &self,
        series: SeriesId,
        d: usize,
        mut is_alive: impl FnMut(SeriesId) -> bool,
    ) -> ReferenceSelection {
        let mut references = Vec::with_capacity(d);
        let mut skipped = Vec::new();
        for &cand in self.candidates(series) {
            if references.len() == d {
                break;
            }
            if is_alive(cand) {
                references.push(cand);
            } else {
                skipped.push(cand);
            }
        }
        ReferenceSelection {
            target: series,
            references,
            skipped,
        }
    }

    /// Builds a catalog automatically by ranking, for every series, all other
    /// series by decreasing absolute Pearson correlation over the provided
    /// historical values.
    ///
    /// `history[i]` must contain the (possibly missing) values of the series
    /// with dense id `i`; all series must have equal length.
    pub fn from_correlation(history: &[Vec<Option<f64>>]) -> Result<Catalog, TsError> {
        let n = history.len();
        if n == 0 {
            return Ok(Catalog::new());
        }
        let len = history[0].len();
        for (i, h) in history.iter().enumerate() {
            if h.len() != len {
                return Err(TsError::LengthMismatch {
                    left: len,
                    right: h.len(),
                    context: "catalog correlation history",
                });
            }
            let _ = i;
        }
        let mut catalog = Catalog::new();
        for s in 0..n {
            let mut scored: Vec<(SeriesId, f64)> = Vec::with_capacity(n - 1);
            for r in 0..n {
                if r == s {
                    continue;
                }
                let rho = pearson_observed(&history[s], &history[r])?;
                scored.push((SeriesId::from(r), rho.abs()));
            }
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            catalog.set_candidates(
                SeriesId::from(s),
                scored.into_iter().map(|(id, _)| id).collect(),
            )?;
        }
        Ok(catalog)
    }

    /// Builds a "ring" catalog where each series uses its neighbours (by
    /// dense id, wrapping around) as candidates: `s+1, s-1, s+2, s-2, ...`.
    ///
    /// This mirrors the meteorological intuition of the paper (nearby weather
    /// stations are the best references) and is a useful default when the
    /// dataset generator places similar series at adjacent ids.
    pub fn ring_neighbours(width: usize) -> Catalog {
        let mut catalog = Catalog::new();
        for s in 0..width {
            let mut ranked = Vec::with_capacity(width.saturating_sub(1));
            for step in 1..width {
                let fwd = (s + step) % width;
                if fwd != s && !ranked.contains(&SeriesId::from(fwd)) {
                    ranked.push(SeriesId::from(fwd));
                }
                let back = (s + width - step % width) % width;
                if back != s && !ranked.contains(&SeriesId::from(back)) {
                    ranked.push(SeriesId::from(back));
                }
                if ranked.len() >= width - 1 {
                    break;
                }
            }
            catalog
                .set_candidates(SeriesId::from(s), ranked)
                .expect("ring neighbours are valid");
        }
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_candidates() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.set_candidates(SeriesId(0), vec![SeriesId(1), SeriesId(2)])
            .unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.candidates(SeriesId(0)), &[SeriesId(1), SeriesId(2)]);
        assert!(c.candidates(SeriesId(9)).is_empty());
    }

    #[test]
    fn self_reference_and_duplicates_rejected() {
        let mut c = Catalog::new();
        assert!(c.set_candidates(SeriesId(0), vec![SeriesId(0)]).is_err());
        assert!(c
            .set_candidates(SeriesId(0), vec![SeriesId(1), SeriesId(1)])
            .is_err());
    }

    #[test]
    fn selection_skips_dead_candidates_like_example_1() {
        // Candidates of s are <r1, r2, r3>. With d = 2:
        //  - if all alive: {r1, r2}
        //  - if r2 is missing at t_n: {r1, r3} (the 13:40 case of Example 1)
        let mut c = Catalog::new();
        c.set_candidates(SeriesId(0), vec![SeriesId(1), SeriesId(2), SeriesId(3)])
            .unwrap();

        let all = c.select_references(SeriesId(0), 2, |_| true);
        assert_eq!(all.references, vec![SeriesId(1), SeriesId(2)]);
        assert!(all.skipped.is_empty());
        assert!(all.is_complete(2));

        let r2_dead = c.select_references(SeriesId(0), 2, |id| id != SeriesId(2));
        assert_eq!(r2_dead.references, vec![SeriesId(1), SeriesId(3)]);
        assert_eq!(r2_dead.skipped, vec![SeriesId(2)]);

        let only_one = c.select_references(SeriesId(0), 2, |id| id == SeriesId(3));
        assert_eq!(only_one.references, vec![SeriesId(3)]);
        assert!(!only_one.is_complete(2));
    }

    #[test]
    fn selection_for_unregistered_series_is_empty() {
        let c = Catalog::new();
        let sel = c.select_references(SeriesId(5), 3, |_| true);
        assert!(sel.references.is_empty());
        assert_eq!(sel.target, SeriesId(5));
    }

    #[test]
    fn correlation_catalog_ranks_by_absolute_pearson() {
        // Series 0: base; series 1: strongly correlated; series 2: anti-correlated
        // (|rho| = 1 as well but computed later, stable order keeps 1 first);
        // series 3: uncorrelated noise-ish.
        let base: Vec<Option<f64>> = (0..50).map(|i| Some((i as f64 * 0.3).sin())).collect();
        let strong: Vec<Option<f64>> = base.iter().map(|v| v.map(|x| 2.0 * x + 1.0)).collect();
        let anti: Vec<Option<f64>> = base.iter().map(|v| v.map(|x| -x)).collect();
        let shifted: Vec<Option<f64>> = (0..50)
            .map(|i| Some(((i as f64 - 5.0) * 0.3).sin()))
            .collect();
        let catalog = Catalog::from_correlation(&[base, strong, anti, shifted]).unwrap();
        let cands = catalog.candidates(SeriesId(0));
        assert_eq!(cands.len(), 3);
        // The shifted series must rank last for series 0.
        assert_eq!(*cands.last().unwrap(), SeriesId(3));
    }

    #[test]
    fn correlation_catalog_validates_lengths() {
        let err = Catalog::from_correlation(&[vec![Some(1.0)], vec![Some(1.0), Some(2.0)]]);
        assert!(err.is_err());
        let empty = Catalog::from_correlation(&[]).unwrap();
        assert!(empty.is_empty());
    }

    #[test]
    fn ring_neighbours_prefer_close_ids() {
        let c = Catalog::ring_neighbours(5);
        assert_eq!(c.len(), 5);
        let cands = c.candidates(SeriesId(0));
        assert_eq!(cands.len(), 4);
        // Nearest neighbours (1 and 4) come before the farther ones.
        assert_eq!(cands[0], SeriesId(1));
        assert_eq!(cands[1], SeriesId(4));
        // No self references, no duplicates.
        assert!(!cands.contains(&SeriesId(0)));
        let unique: std::collections::BTreeSet<_> = cands.iter().collect();
        assert_eq!(unique.len(), cands.len());
    }

    #[test]
    fn ring_neighbours_small_widths() {
        let c = Catalog::ring_neighbours(2);
        assert_eq!(c.candidates(SeriesId(0)), &[SeriesId(1)]);
        assert_eq!(c.candidates(SeriesId(1)), &[SeriesId(0)]);
        let single = Catalog::ring_neighbours(1);
        assert!(single.candidates(SeriesId(0)).is_empty());
    }
}
