//! Missing-value bookkeeping: masks, gaps and block statistics.
//!
//! The experiments of the paper simulate *large blocks of consecutively
//! missing values* (Section 7: "e.g. one week") — a sensor fails and stays
//! broken until a technician replaces it.  This module provides the
//! machinery to describe and analyse such gaps independently of how they
//! were produced.

use crate::series::TimeSeries;
use crate::timestamp::Timestamp;

/// A boolean mask recording which ticks of a series are missing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissingMask {
    start: Timestamp,
    missing: Vec<bool>,
}

impl MissingMask {
    /// Builds the mask of a series (true = missing).
    pub fn of_series(series: &TimeSeries) -> Self {
        MissingMask {
            start: series.start(),
            missing: series.values().iter().map(|v| v.is_none()).collect(),
        }
    }

    /// Builds a mask from a raw boolean vector.
    pub fn from_bools(start: Timestamp, missing: Vec<bool>) -> Self {
        MissingMask { start, missing }
    }

    /// Number of ticks covered by the mask.
    pub fn len(&self) -> usize {
        self.missing.len()
    }

    /// Whether the mask covers no ticks.
    pub fn is_empty(&self) -> bool {
        self.missing.is_empty()
    }

    /// Whether the tick at `t` is missing (false when `t` is out of range).
    pub fn is_missing(&self, t: Timestamp) -> bool {
        let d = t - self.start;
        if d < 0 {
            return false;
        }
        self.missing.get(d as usize).copied().unwrap_or(false)
    }

    /// Total number of missing ticks.
    pub fn missing_count(&self) -> usize {
        self.missing.iter().filter(|&&m| m).count()
    }

    /// Timestamps of all missing ticks, in order.
    pub fn missing_timestamps(&self) -> Vec<Timestamp> {
        self.missing
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| self.start + i as i64)
            .collect()
    }

    /// Decomposes the mask into maximal runs of consecutive missing ticks.
    pub fn gaps(&self) -> Vec<GapReport> {
        let mut gaps = Vec::new();
        let mut run_start: Option<usize> = None;
        for (i, &m) in self.missing.iter().enumerate() {
            match (m, run_start) {
                (true, None) => run_start = Some(i),
                (false, Some(s)) => {
                    gaps.push(GapReport {
                        start: self.start + s as i64,
                        length: i - s,
                    });
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            gaps.push(GapReport {
                start: self.start + s as i64,
                length: self.missing.len() - s,
            });
        }
        gaps
    }

    /// Length of the longest run of consecutive missing ticks.
    pub fn longest_gap(&self) -> usize {
        self.gaps().into_iter().map(|g| g.length).max().unwrap_or(0)
    }
}

/// A maximal run of consecutively missing values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GapReport {
    /// First missing tick of the gap.
    pub start: Timestamp,
    /// Number of consecutive missing ticks.
    pub length: usize,
}

impl GapReport {
    /// One-past-the-end timestamp of the gap.
    pub fn end(&self) -> Timestamp {
        self.start + self.length as i64
    }

    /// Whether the timestamp falls inside the gap.
    pub fn contains(&self, t: Timestamp) -> bool {
        t >= self.start && t < self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timestamp::SampleInterval;

    fn series(values: Vec<Option<f64>>) -> TimeSeries {
        TimeSeries::new(
            0u32,
            "s",
            Timestamp::new(10),
            SampleInterval::FIVE_MINUTES,
            values,
        )
    }

    #[test]
    fn mask_reflects_series() {
        let s = series(vec![Some(1.0), None, None, Some(4.0), None]);
        let m = MissingMask::of_series(&s);
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        assert_eq!(m.missing_count(), 3);
        assert!(!m.is_missing(Timestamp::new(10)));
        assert!(m.is_missing(Timestamp::new(11)));
        assert!(m.is_missing(Timestamp::new(14)));
        assert!(!m.is_missing(Timestamp::new(9))); // before start
        assert!(!m.is_missing(Timestamp::new(100))); // after end
        assert_eq!(
            m.missing_timestamps(),
            vec![Timestamp::new(11), Timestamp::new(12), Timestamp::new(14)]
        );
    }

    #[test]
    fn gaps_are_maximal_runs() {
        let s = series(vec![Some(1.0), None, None, Some(4.0), None]);
        let m = MissingMask::of_series(&s);
        let gaps = m.gaps();
        assert_eq!(gaps.len(), 2);
        assert_eq!(
            gaps[0],
            GapReport {
                start: Timestamp::new(11),
                length: 2
            }
        );
        assert_eq!(
            gaps[1],
            GapReport {
                start: Timestamp::new(14),
                length: 1
            }
        );
        assert_eq!(m.longest_gap(), 2);
        assert!(gaps[0].contains(Timestamp::new(12)));
        assert!(!gaps[0].contains(Timestamp::new(13)));
        assert_eq!(gaps[0].end(), Timestamp::new(13));
    }

    #[test]
    fn gap_spanning_the_entire_series() {
        let s = series(vec![None, None, None]);
        let m = MissingMask::of_series(&s);
        assert_eq!(m.gaps().len(), 1);
        assert_eq!(m.longest_gap(), 3);
    }

    #[test]
    fn fully_observed_series_has_no_gaps() {
        let s = series(vec![Some(1.0), Some(2.0)]);
        let m = MissingMask::of_series(&s);
        assert!(m.gaps().is_empty());
        assert_eq!(m.longest_gap(), 0);
        assert_eq!(m.missing_count(), 0);
    }

    #[test]
    fn mask_from_raw_bools() {
        let m = MissingMask::from_bools(Timestamp::new(0), vec![true, false, true]);
        assert_eq!(m.missing_count(), 2);
        assert!(m.is_missing(Timestamp::new(0)));
        assert!(!m.is_missing(Timestamp::new(1)));
        let empty = MissingMask::from_bools(Timestamp::new(0), vec![]);
        assert!(empty.is_empty());
    }
}
