//! [`Snapshot`] implementations for the stream substrate.
//!
//! The durability layer (`tkcm-store`) defines the deterministic binary
//! codec; this module teaches the substrate types — ring buffers, the
//! streaming window with its provenance and timestamp rings, catalogs, fleet
//! partitions and stream ticks — to write themselves into it and to
//! reconstruct themselves *exactly* (same ring offsets, same provenance
//! bits, same `f64` bit patterns) so that a recovered engine is
//! indistinguishable from one that never stopped.
//!
//! Decoding validates structural invariants (ring offsets in range, matching
//! widths, ids inside the fleet) on top of the store layer's checksums:
//! checksums catch flipped bytes, these checks catch a payload that was
//! written by different code than is reading it.

use tkcm_store::{Decoder, Encoder, Snapshot, StoreError};

use crate::catalog::Catalog;
use crate::errors::TsError;
use crate::partition::FleetPartition;
use crate::ring_buffer::RingBuffer;
use crate::series::SeriesId;
use crate::stream::StreamTick;
use crate::timestamp::Timestamp;
use crate::window::{SlotState, StreamingWindow};

impl From<StoreError> for TsError {
    fn from(e: StoreError) -> Self {
        TsError::Io(e.to_string())
    }
}

impl Snapshot for Timestamp {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.i64(self.tick());
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(Timestamp::new(dec.i64()?))
    }
}

impl Snapshot for SeriesId {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.u32(self.0);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(SeriesId(dec.u32()?))
    }
}

impl Snapshot for SlotState {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.u8(match self {
            SlotState::Observed => 0,
            SlotState::Imputed => 1,
            SlotState::Missing => 2,
        });
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match dec.u8()? {
            0 => Ok(SlotState::Observed),
            1 => Ok(SlotState::Imputed),
            2 => Ok(SlotState::Missing),
            other => Err(StoreError::corrupt(format!("invalid slot state {other}"))),
        }
    }
}

impl Snapshot for RingBuffer {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.usize(self.slots.len());
        enc.usize(self.offset);
        enc.usize(self.filled);
        for slot in &self.slots {
            enc.opt_f64(*slot);
        }
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let capacity = dec.usize()?;
        let offset = dec.usize()?;
        let filled = dec.usize()?;
        if capacity == 0 || offset >= capacity || filled > capacity {
            return Err(StoreError::invalid(format!(
                "ring buffer layout out of range: capacity {capacity}, offset {offset}, \
                 filled {filled}"
            )));
        }
        // Every slot is at least one encoded byte, so a capacity exceeding
        // the remaining payload is structurally impossible — reject it
        // before allocating (same guard as `Decoder::seq_len`).
        if capacity > dec.remaining() {
            return Err(StoreError::corrupt(format!(
                "ring buffer claims {capacity} slot(s) but only {} byte(s) remain",
                dec.remaining()
            )));
        }
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(dec.opt_f64()?);
        }
        Ok(RingBuffer {
            slots,
            offset,
            filled,
        })
    }
}

impl Snapshot for StreamingWindow {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.usize(self.length);
        self.buffers.write_into(enc)?;
        enc.usize(self.states.len());
        for series_states in &self.states {
            series_states.write_into(enc)?;
        }
        self.times.write_into(enc)?;
        enc.usize(self.state_offset);
        match self.current_time {
            Some(t) => {
                enc.bool(true);
                t.write_into(enc)?;
            }
            None => enc.bool(false),
        }
        enc.usize(self.ticks_seen);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let length = dec.usize()?;
        let buffers: Vec<RingBuffer> = Vec::read_from(dec)?;
        let state_rows = dec.seq_len()?;
        let mut states = Vec::with_capacity(state_rows);
        for _ in 0..state_rows {
            states.push(Vec::<SlotState>::read_from(dec)?);
        }
        let times: Vec<Timestamp> = Vec::read_from(dec)?;
        let state_offset = dec.usize()?;
        let current_time = if dec.bool()? {
            Some(Timestamp::read_from(dec)?)
        } else {
            None
        };
        let ticks_seen = dec.usize()?;

        if length == 0 || buffers.is_empty() {
            return Err(StoreError::invalid(
                "window snapshot has zero length or zero width",
            ));
        }
        if buffers.iter().any(|b| b.capacity() != length)
            || states.len() != buffers.len()
            || states.iter().any(|s| s.len() != length)
            || times.len() != length
            || state_offset >= length
        {
            return Err(StoreError::invalid(
                "window snapshot rings disagree on length/width",
            ));
        }
        Ok(StreamingWindow {
            length,
            buffers,
            states,
            times,
            state_offset,
            current_time,
            ticks_seen,
        })
    }
}

impl Snapshot for StreamTick {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        self.time.write_into(enc)?;
        self.values.write_into(enc)
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let time = Timestamp::read_from(dec)?;
        let values = Vec::read_from(dec)?;
        Ok(StreamTick { time, values })
    }
}

impl Snapshot for Catalog {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.usize(self.candidates.len());
        for (series, ranked) in &self.candidates {
            series.write_into(enc)?;
            ranked.write_into(enc)?;
        }
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let entries = dec.seq_len()?;
        let mut catalog = Catalog::new();
        for _ in 0..entries {
            let series = SeriesId::read_from(dec)?;
            let ranked: Vec<SeriesId> = Vec::read_from(dec)?;
            // Route through the validating setter so a decoded catalog obeys
            // the same invariants (no self references, no duplicates) as one
            // built through the public API.
            catalog
                .set_candidates(series, ranked)
                .map_err(|e| StoreError::invalid(e.to_string()))?;
        }
        Ok(catalog)
    }
}

impl Snapshot for FleetPartition {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.u32(crate::partition::PARTITION_FORMAT_VERSION);
        enc.usize(self.width);
        enc.usize(self.shard_count);
        enc.u64(self.version);
        enc.usize(self.components.len());
        for members in &self.components {
            members.write_into(enc)?;
        }
        for &shard in &self.assignment {
            enc.usize(shard);
        }
        enc.usize(self.log.len());
        for migration in &self.log {
            enc.usize(migration.component);
            enc.usize(migration.from);
            enc.usize(migration.to);
            enc.u64(migration.at_tick);
        }
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let layout = dec.u32()?;
        if layout != crate::partition::PARTITION_FORMAT_VERSION {
            return Err(StoreError::invalid(format!(
                "partition layout {layout} is not the supported {}",
                crate::partition::PARTITION_FORMAT_VERSION
            )));
        }
        let width = dec.usize()?;
        // Every one of the `width` series must appear in some component
        // (4 encoded bytes each), so a width beyond the remaining payload is
        // structurally impossible — reject before allocating.
        if width > dec.remaining() {
            return Err(StoreError::corrupt(format!(
                "partition claims width {width} but only {} byte(s) remain",
                dec.remaining()
            )));
        }
        let shard_count = dec.usize()?;
        let version = dec.u64()?;
        let component_count = dec.seq_len()?;
        let mut components = Vec::with_capacity(component_count);
        for _ in 0..component_count {
            components.push(Vec::<SeriesId>::read_from(dec)?);
        }
        let mut assignment = Vec::with_capacity(component_count);
        for _ in 0..component_count {
            assignment.push(dec.usize()?);
        }
        let log_len = dec.seq_len()?;
        let mut log = Vec::with_capacity(log_len);
        for _ in 0..log_len {
            log.push(crate::partition::Migration {
                component: dec.usize()?,
                from: dec.usize()?,
                to: dec.usize()?,
                at_tick: dec.u64()?,
            });
        }
        // Route through the validating constructor so a decoded partition
        // obeys the same invariants (every series assigned exactly once, in
        // range) as one built through the public API.
        FleetPartition::from_parts(width, components, assignment, shard_count, version, log)
            .map_err(|e| StoreError::invalid(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkcm_store::{decode_from_slice, encode_to_vec};

    fn tick(t: i64, values: Vec<Option<f64>>) -> StreamTick {
        StreamTick::new(Timestamp::new(t), values)
    }

    fn round_trip<T: Snapshot>(value: &T) -> T {
        decode_from_slice(&encode_to_vec(value).unwrap()).unwrap()
    }

    #[test]
    fn ring_buffer_round_trips_exactly() {
        let mut rb = RingBuffer::new(4);
        for v in [Some(1.5), None, Some(-0.0), Some(f64::MAX), Some(2.0)] {
            rb.push(v);
        }
        let back = round_trip(&rb);
        assert_eq!(back, rb);
        assert_eq!(back.offset(), rb.offset());
        assert_eq!(back.len(), rb.len());
    }

    #[test]
    fn window_round_trips_with_provenance_and_times() {
        let mut w = StreamingWindow::new(2, 3);
        w.push_tick(&tick(0, vec![Some(1.0), None])).unwrap();
        w.push_tick(&tick(600, vec![None, Some(2.0)])).unwrap();
        w.write_imputed(SeriesId(0), 0, 7.5).unwrap();
        w.push_tick(&tick(1200, vec![Some(3.0), Some(4.0)]))
            .unwrap();

        let back = round_trip(&w);
        assert_eq!(back.length(), 3);
        assert_eq!(back.width(), 2);
        assert_eq!(back.current_time(), Some(Timestamp::new(1200)));
        assert_eq!(back.ticks_seen(), 3);
        for id in [SeriesId(0), SeriesId(1)] {
            for age in 0..3 {
                assert_eq!(
                    back.slot_recent(id, age).unwrap(),
                    w.slot_recent(id, age).unwrap(),
                    "slot {id}/{age} diverged"
                );
            }
        }
        assert_eq!(back.time_of_age(1), Some(Timestamp::new(600)));
        // A fresh (never pushed) window round-trips too.
        let empty = StreamingWindow::new(1, 2);
        let back = round_trip(&empty);
        assert_eq!(back.current_time(), None);
        assert_eq!(back.ticks_seen(), 0);
    }

    #[test]
    fn recovered_window_accepts_further_ticks_like_the_original() {
        let mut w = StreamingWindow::new(1, 4);
        for t in 0..6i64 {
            w.push_tick(&tick(t * 10, vec![Some(t as f64)])).unwrap();
        }
        let mut back = round_trip(&w);
        w.push_tick(&tick(60, vec![Some(6.0)])).unwrap();
        back.push_tick(&tick(60, vec![Some(6.0)])).unwrap();
        for age in 0..4 {
            assert_eq!(
                back.value_recent(SeriesId(0), age).unwrap(),
                w.value_recent(SeriesId(0), age).unwrap()
            );
            assert_eq!(back.time_of_age(age), w.time_of_age(age));
        }
        // Stale ticks are still rejected.
        assert!(back.push_tick(&tick(60, vec![Some(0.0)])).is_err());
    }

    #[test]
    fn catalog_round_trips_and_validates() {
        let mut c = Catalog::new();
        c.set_candidates(SeriesId(0), vec![SeriesId(2), SeriesId(1)])
            .unwrap();
        c.set_candidates(SeriesId(2), vec![SeriesId(0)]).unwrap();
        let back = round_trip(&c);
        assert_eq!(back.candidates(SeriesId(0)), &[SeriesId(2), SeriesId(1)]);
        assert_eq!(back.candidates(SeriesId(2)), &[SeriesId(0)]);
        assert!(back.candidates(SeriesId(1)).is_empty());

        // A hand-corrupted payload with a self reference is rejected.
        let mut enc = Encoder::new();
        enc.usize(1);
        SeriesId(3).write_into(&mut enc).unwrap();
        vec![SeriesId(3)].write_into(&mut enc).unwrap();
        assert!(decode_from_slice::<Catalog>(&enc.into_bytes()).is_err());
    }

    #[test]
    fn partition_round_trips_with_locate_rebuilt() {
        let mut c = Catalog::new();
        c.set_candidates(SeriesId(0), vec![SeriesId(1)]).unwrap();
        c.set_candidates(SeriesId(2), vec![SeriesId(3)]).unwrap();
        let p = FleetPartition::new(5, &c, 3).unwrap();
        let back = round_trip(&p);
        assert_eq!(back, p);
        assert_eq!(
            back.locate(SeriesId(3)).unwrap(),
            p.locate(SeriesId(3)).unwrap()
        );
    }

    /// Hand-encodes a partition payload in the current layout: components,
    /// then one shard index per component, then an empty migration log.
    fn encode_partition(width: usize, shard_count: usize, components: &[Vec<SeriesId>]) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.u32(crate::partition::PARTITION_FORMAT_VERSION);
        enc.usize(width);
        enc.usize(shard_count);
        enc.u64(0); // live-mapping version
        enc.usize(components.len());
        for members in components {
            members.write_into(&mut enc).unwrap();
        }
        for _ in components {
            enc.usize(0); // everything on shard 0
        }
        enc.usize(0); // empty migration log
        enc.into_bytes()
    }

    #[test]
    fn partition_decode_rejects_bad_assignments() {
        // Series assigned twice.
        let twice = encode_partition(2, 1, &[vec![SeriesId(0)], vec![SeriesId(0)]]);
        assert!(decode_from_slice::<FleetPartition>(&twice).is_err());
        // Series outside the width.
        let outside = encode_partition(1, 1, &[vec![SeriesId(7)]]);
        assert!(decode_from_slice::<FleetPartition>(&outside).is_err());
        // Unassigned series.
        let missing = encode_partition(2, 1, &[vec![SeriesId(0)]]);
        assert!(decode_from_slice::<FleetPartition>(&missing).is_err());
        // Unknown layout tag.
        let mut enc = Encoder::new();
        enc.u32(crate::partition::PARTITION_FORMAT_VERSION + 1);
        assert!(decode_from_slice::<FleetPartition>(&enc.into_bytes()).is_err());
    }

    #[test]
    fn partition_round_trips_migration_log_and_version() {
        let mut c = Catalog::new();
        c.set_candidates(SeriesId(0), vec![SeriesId(1)]).unwrap();
        c.set_candidates(SeriesId(2), vec![SeriesId(3)]).unwrap();
        let mut p = FleetPartition::new(4, &c, 2).unwrap();
        p.migrate(1, 0, 12).unwrap();
        p.migrate(1, 1, 30).unwrap();
        let back = round_trip(&p);
        assert_eq!(back, p);
        assert_eq!(back.version(), 2);
        assert_eq!(back.migration_log(), p.migration_log());
        assert_eq!(back.assignment(), p.assignment());
    }

    #[test]
    fn stream_tick_round_trips() {
        let t = tick(-5, vec![Some(1.0), None, Some(f64::EPSILON)]);
        assert_eq!(round_trip(&t), t);
    }

    #[test]
    fn slot_state_rejects_unknown_tags() {
        let mut dec = Decoder::new(&[3]);
        assert!(SlotState::read_from(&mut dec).is_err());
    }

    #[test]
    fn store_errors_convert_to_ts_errors() {
        let e: TsError = StoreError::corrupt("wal record 2").into();
        assert!(e.to_string().contains("wal record 2"));
    }
}
