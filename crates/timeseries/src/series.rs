//! In-memory time series with missing values.
//!
//! A [`TimeSeries`] stores a regularly sampled sequence of measurements,
//! where each slot is either a concrete value or missing (`NIL` in the
//! paper's notation).  Series are the unit of exchange between the dataset
//! generators, the streaming window and the evaluation harness.

use std::fmt;

use crate::errors::TsError;
use crate::timestamp::{SampleInterval, Timestamp};

/// Identifier of a time series inside a dataset / catalog.
///
/// Ids are dense small integers so they double as indices into per-tick value
/// vectors (`values[id.index()]`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SeriesId(pub u32);

impl SeriesId {
    /// Creates an id from a dense index.
    pub const fn new(index: u32) -> Self {
        SeriesId(index)
    }

    /// Returns the id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SeriesId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for SeriesId {
    fn from(v: u32) -> Self {
        SeriesId(v)
    }
}

impl From<usize> for SeriesId {
    fn from(v: usize) -> Self {
        SeriesId(v as u32)
    }
}

/// A regularly sampled time series with optional (missing) values.
///
/// The series starts at [`TimeSeries::start`]; sample `i` (0-based) is the
/// measurement at timestamp `start + i`.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeries {
    id: SeriesId,
    name: String,
    start: Timestamp,
    interval: SampleInterval,
    values: Vec<Option<f64>>,
}

impl TimeSeries {
    /// Creates a series from a vector of optional values.
    pub fn new(
        id: impl Into<SeriesId>,
        name: impl Into<String>,
        start: Timestamp,
        interval: SampleInterval,
        values: Vec<Option<f64>>,
    ) -> Self {
        TimeSeries {
            id: id.into(),
            name: name.into(),
            start,
            interval,
            values,
        }
    }

    /// Creates a fully observed series (no missing values) from raw values.
    pub fn from_values(
        id: impl Into<SeriesId>,
        name: impl Into<String>,
        start: Timestamp,
        interval: SampleInterval,
        values: impl IntoIterator<Item = f64>,
    ) -> Self {
        Self::new(
            id,
            name,
            start,
            interval,
            values.into_iter().map(Some).collect(),
        )
    }

    /// Creates an empty series that can be grown with [`TimeSeries::push`].
    pub fn empty(
        id: impl Into<SeriesId>,
        name: impl Into<String>,
        start: Timestamp,
        interval: SampleInterval,
    ) -> Self {
        Self::new(id, name, start, interval, Vec::new())
    }

    /// Identifier of the series.
    pub fn id(&self) -> SeriesId {
        self.id
    }

    /// Human-readable name (e.g. station name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Timestamp of the first sample.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// Timestamp of the last sample, or `start - 1` if the series is empty.
    pub fn end(&self) -> Timestamp {
        self.start + (self.values.len() as i64 - 1)
    }

    /// Sampling interval of the series.
    pub fn interval(&self) -> SampleInterval {
        self.interval
    }

    /// Number of samples (observed or missing).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples at all.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Appends a sample at the next timestamp.
    pub fn push(&mut self, value: Option<f64>) {
        self.values.push(value);
    }

    /// Returns the sample index of `t`, if `t` falls inside the series.
    pub fn index_of(&self, t: Timestamp) -> Option<usize> {
        let delta = t - self.start;
        if delta < 0 || delta as usize >= self.values.len() {
            None
        } else {
            Some(delta as usize)
        }
    }

    /// Returns the timestamp of sample `index`.
    pub fn timestamp_of(&self, index: usize) -> Timestamp {
        self.start + index as i64
    }

    /// Value at timestamp `t`: `None` if missing or out of range.
    pub fn value_at(&self, t: Timestamp) -> Option<f64> {
        self.index_of(t).and_then(|i| self.values[i])
    }

    /// Value at sample index `i` (`None` when missing).
    pub fn value_at_index(&self, i: usize) -> Option<f64> {
        self.values.get(i).copied().flatten()
    }

    /// Value at timestamp `t` or an error describing why it is unavailable.
    pub fn try_value_at(&self, t: Timestamp) -> Result<f64, TsError> {
        match self.index_of(t) {
            None => Err(TsError::TimeOutOfRange {
                requested: t,
                earliest: self.start,
                latest: self.end(),
            }),
            Some(i) => self.values[i].ok_or(TsError::MissingValue {
                series: self.id,
                at: t,
            }),
        }
    }

    /// Overwrites the value at timestamp `t`.
    ///
    /// Returns an error if `t` is outside the series.
    pub fn set_value_at(&mut self, t: Timestamp, value: Option<f64>) -> Result<(), TsError> {
        match self.index_of(t) {
            Some(i) => {
                self.values[i] = value;
                Ok(())
            }
            None => Err(TsError::TimeOutOfRange {
                requested: t,
                earliest: self.start,
                latest: self.end(),
            }),
        }
    }

    /// Marks the half-open tick range `[from, to)` as missing.
    ///
    /// Indices outside the series are ignored, which makes it convenient for
    /// simulating sensor failures near the end of a dataset.
    pub fn mark_missing_range(&mut self, from: Timestamp, to: Timestamp) {
        let mut t = from;
        while t < to {
            if let Some(i) = self.index_of(t) {
                self.values[i] = None;
            }
            t += 1;
        }
    }

    /// Read-only access to the raw optional values.
    pub fn values(&self) -> &[Option<f64>] {
        &self.values
    }

    /// Iterator over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, Option<f64>)> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, v)| (self.start + i as i64, *v))
    }

    /// Iterator over the observed (non-missing) `(timestamp, value)` pairs.
    pub fn observed(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.iter().filter_map(|(t, v)| v.map(|x| (t, x)))
    }

    /// Number of missing samples.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_none()).count()
    }

    /// Fraction of missing samples in `[0, 1]`; zero for an empty series.
    pub fn missing_ratio(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.missing_count() as f64 / self.values.len() as f64
        }
    }

    /// Returns a copy of the dense values, substituting `fill` for missing slots.
    pub fn to_dense(&self, fill: f64) -> Vec<f64> {
        self.values.iter().map(|v| v.unwrap_or(fill)).collect()
    }

    /// Returns a sub-series covering the tick range `[from, to)` (clamped to
    /// the series bounds).  The slice keeps the original id and name.
    pub fn slice(&self, from: Timestamp, to: Timestamp) -> TimeSeries {
        let lo = (from - self.start).max(0) as usize;
        let hi = ((to - self.start).max(0) as usize).min(self.values.len());
        let (lo, hi) = (lo.min(hi), hi);
        TimeSeries {
            id: self.id,
            name: self.name.clone(),
            start: self.start + lo as i64,
            interval: self.interval,
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// Creates a phase-shifted copy of the series: the copy at time `t`
    /// reports the original value at time `t - shift`.
    ///
    /// This mirrors how the SBR-1d dataset is derived from SBR in Section 7.1
    /// ("we shift the time series of the SBR data set by a random amount up
    /// to one day").  Ticks that would refer to values before the start of
    /// the original series are missing in the copy.
    pub fn shifted(&self, shift: i64) -> TimeSeries {
        let values = (0..self.values.len() as i64)
            .map(|i| {
                let src = i - shift;
                if src < 0 || src as usize >= self.values.len() {
                    None
                } else {
                    self.values[src as usize]
                }
            })
            .collect();
        TimeSeries {
            id: self.id,
            name: format!("{}+shift{}", self.name, shift),
            start: self.start,
            interval: self.interval,
            values,
        }
    }

    /// Minimum and maximum of the observed values, or `None` if everything is
    /// missing.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut it = self.values.iter().flatten();
        let first = *it.next()?;
        let mut lo = first;
        let mut hi = first;
        for &v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(values: Vec<Option<f64>>) -> TimeSeries {
        TimeSeries::new(
            0u32,
            "s",
            Timestamp::new(0),
            SampleInterval::FIVE_MINUTES,
            values,
        )
    }

    #[test]
    fn basic_accessors() {
        let s = series(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.start(), Timestamp::new(0));
        assert_eq!(s.end(), Timestamp::new(2));
        assert_eq!(s.value_at(Timestamp::new(0)), Some(1.0));
        assert_eq!(s.value_at(Timestamp::new(1)), None);
        assert_eq!(s.value_at(Timestamp::new(5)), None);
        assert_eq!(s.value_at_index(2), Some(3.0));
        assert_eq!(s.missing_count(), 1);
        assert!((s.missing_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn try_value_distinguishes_missing_and_out_of_range() {
        let s = series(vec![Some(1.0), None]);
        assert_eq!(s.try_value_at(Timestamp::new(0)), Ok(1.0));
        assert!(matches!(
            s.try_value_at(Timestamp::new(1)),
            Err(TsError::MissingValue { .. })
        ));
        assert!(matches!(
            s.try_value_at(Timestamp::new(9)),
            Err(TsError::TimeOutOfRange { .. })
        ));
    }

    #[test]
    fn set_and_mark_missing() {
        let mut s = series(vec![Some(1.0), Some(2.0), Some(3.0), Some(4.0)]);
        s.set_value_at(Timestamp::new(1), Some(9.0)).unwrap();
        assert_eq!(s.value_at(Timestamp::new(1)), Some(9.0));
        assert!(s.set_value_at(Timestamp::new(99), Some(0.0)).is_err());

        s.mark_missing_range(Timestamp::new(2), Timestamp::new(4));
        assert_eq!(s.value_at(Timestamp::new(2)), None);
        assert_eq!(s.value_at(Timestamp::new(3)), None);
        assert_eq!(s.missing_count(), 2);
        // Out-of-range marks are ignored.
        s.mark_missing_range(Timestamp::new(10), Timestamp::new(12));
        assert_eq!(s.missing_count(), 2);
    }

    #[test]
    fn iterators_and_dense_conversion() {
        let s = series(vec![Some(1.0), None, Some(3.0)]);
        let observed: Vec<_> = s.observed().collect();
        assert_eq!(
            observed,
            vec![(Timestamp::new(0), 1.0), (Timestamp::new(2), 3.0)]
        );
        assert_eq!(s.to_dense(-1.0), vec![1.0, -1.0, 3.0]);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn slice_clamps_to_bounds() {
        let s = series((0..10).map(|i| Some(i as f64)).collect());
        let sub = s.slice(Timestamp::new(3), Timestamp::new(7));
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.start(), Timestamp::new(3));
        assert_eq!(sub.value_at(Timestamp::new(3)), Some(3.0));
        assert_eq!(sub.value_at(Timestamp::new(6)), Some(6.0));

        let clamped = s.slice(Timestamp::new(-5), Timestamp::new(100));
        assert_eq!(clamped.len(), 10);

        let empty = s.slice(Timestamp::new(8), Timestamp::new(3));
        assert!(empty.is_empty());
    }

    #[test]
    fn shifted_series_lags_original() {
        let s = series((0..6).map(|i| Some(i as f64)).collect());
        let lag2 = s.shifted(2);
        // value at t is original value at t-2
        assert_eq!(lag2.value_at(Timestamp::new(0)), None);
        assert_eq!(lag2.value_at(Timestamp::new(1)), None);
        assert_eq!(lag2.value_at(Timestamp::new(2)), Some(0.0));
        assert_eq!(lag2.value_at(Timestamp::new(5)), Some(3.0));
        assert_eq!(lag2.len(), s.len());
    }

    #[test]
    fn min_max_ignores_missing() {
        let s = series(vec![None, Some(5.0), Some(-2.0), None, Some(3.0)]);
        assert_eq!(s.min_max(), Some((-2.0, 5.0)));
        let all_missing = series(vec![None, None]);
        assert_eq!(all_missing.min_max(), None);
    }

    #[test]
    fn empty_and_push_grow_series() {
        let mut s = TimeSeries::empty(7u32, "grow", Timestamp::new(10), SampleInterval::ONE_MINUTE);
        assert!(s.is_empty());
        assert_eq!(s.missing_ratio(), 0.0);
        s.push(Some(1.0));
        s.push(None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.end(), Timestamp::new(11));
        assert_eq!(s.id(), SeriesId(7));
        assert_eq!(s.name(), "grow");
        assert_eq!(s.interval(), SampleInterval::ONE_MINUTE);
        assert_eq!(s.timestamp_of(1), Timestamp::new(11));
    }

    #[test]
    fn series_id_conversions() {
        assert_eq!(SeriesId::from(3usize).index(), 3);
        assert_eq!(SeriesId::from(4u32), SeriesId::new(4));
        assert_eq!(SeriesId(5).to_string(), "#5");
    }

    #[test]
    fn from_values_builds_fully_observed_series() {
        let s = TimeSeries::from_values(
            1u32,
            "f",
            Timestamp::new(0),
            SampleInterval::ONE_HOUR,
            [1.0, 2.0],
        );
        assert_eq!(s.missing_count(), 0);
        assert_eq!(s.len(), 2);
    }
}
