//! # tkcm-timeseries
//!
//! Time-series stream substrate used by the TKCM imputation engine and all
//! baseline algorithms.
//!
//! The crate models the setting of Section 3 of the paper *Continuous
//! Imputation of Missing Values in Streams of Pattern-Determining Time
//! Series* (EDBT 2017):
//!
//! * a set `S = {s1, s2, ...}` of **streaming time series** reporting values
//!   at discrete time points `..., t_{n-2}, t_{n-1}, t_n`,
//! * a value may be **missing** (`NIL` in the paper, [`None`] here),
//! * a **streaming window** `W` keeps the last `L` measurements of every
//!   series in main memory, implemented as ring buffers with O(1) advance
//!   (Lemma 6.1),
//! * every series has an ordered list of **candidate reference series**; the
//!   first `d` candidates that are alive at the current time are the
//!   reference set `R_s` used for imputation.
//!
//! The crate is self-contained (no external dependencies) and is shared by
//! the TKCM core (`tkcm-core`), the baselines (`tkcm-baselines`), the dataset
//! generators (`tkcm-datasets`) and the experiment harness (`tkcm-eval`).
//!
//! ## Example
//!
//! ```
//! use tkcm_timeseries::{Catalog, SeriesId, SlotState, StreamTick, StreamingWindow, Timestamp};
//!
//! // A window over three streams keeping the last 4 measurements each.
//! let mut window = StreamingWindow::new(3, 4);
//! window
//!     .push_tick(&StreamTick::new(
//!         Timestamp::new(0),
//!         vec![Some(21.5), None, Some(19.8)],
//!     ))
//!     .unwrap();
//! assert_eq!(window.currently_missing(), vec![SeriesId(1)]);
//!
//! // Imputed values are written back with provenance.
//! window.write_imputed(SeriesId(1), 0, 20.6).unwrap();
//! let slot = window.slot_recent(SeriesId(1), 0).unwrap();
//! assert_eq!(slot.value, Some(20.6));
//! assert_eq!(slot.state, SlotState::Imputed);
//!
//! // Reference selection skips candidates that are dead at the current tick.
//! let mut catalog = Catalog::new();
//! catalog
//!     .set_candidates(SeriesId(0), vec![SeriesId(1), SeriesId(2)])
//!     .unwrap();
//! let selection = catalog.select_references(SeriesId(0), 1, |id| id == SeriesId(2));
//! assert_eq!(selection.references, vec![SeriesId(2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod errors;
pub mod missing;
pub mod partition;
pub mod persist;
pub mod ring_buffer;
pub mod series;
pub mod stats;
pub mod stream;
pub mod timestamp;
pub mod window;

pub use catalog::{Catalog, ReferenceSelection};
pub use errors::TsError;
pub use missing::{GapReport, MissingMask};
pub use partition::{FleetPartition, Migration, PARTITION_FORMAT_VERSION};
pub use ring_buffer::RingBuffer;
pub use series::{SeriesId, TimeSeries};
pub use stats::{mean, pearson, population_std, population_variance, Summary};
pub use stream::{SliceStream, StreamSource, StreamTick};
pub use timestamp::{SampleInterval, Timestamp};
pub use window::{SlotState, StreamingWindow, WindowSlot};
