//! Fixed-capacity ring buffer used for the streaming window.
//!
//! Section 6.2 of the paper: "The implementation uses one ring buffer of
//! length `L` for each time series `s` and an offset `O` into the ring
//! buffers to efficiently update the streaming window.  The value at time
//! `t_n` is located at `s[O]` and the oldest value at `s[(O+1)%L]`."
//!
//! [`RingBuffer`] reproduces exactly this layout so that the TKCM imputer
//! (`tkcm-core`) can use the same index arithmetic as Algorithm 1, while also
//! offering safer "age based" accessors (`recent(0)` = newest value).
//! Advancing the window is O(1) (Lemma 6.1).

use std::fmt;

/// Fixed-capacity circular buffer over `f64` slots that may be missing.
///
/// The buffer always holds exactly `capacity` logical slots.  Before the
/// buffer has been filled once, the not-yet-written slots read as missing
/// (`None`).
#[derive(Clone, PartialEq)]
pub struct RingBuffer {
    // `pub(crate)` so the snapshot codec (`persist`) can persist/restore the
    // exact ring layout without exposing it beyond the crate.
    pub(crate) slots: Vec<Option<f64>>,
    /// Index of the most recently written slot (the paper's offset `O`).
    pub(crate) offset: usize,
    /// Number of values pushed so far, saturating at `capacity`.
    pub(crate) filled: usize,
}

impl RingBuffer {
    /// Creates a buffer of the given capacity with every slot missing.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingBuffer {
            slots: vec![None; capacity],
            offset: capacity - 1,
            filled: 0,
        }
    }

    /// Creates a buffer pre-filled with `values` (the last `capacity` values
    /// are kept if more are given).
    pub fn from_values(capacity: usize, values: impl IntoIterator<Item = Option<f64>>) -> Self {
        let mut rb = RingBuffer::new(capacity);
        for v in values {
            rb.push(v);
        }
        rb
    }

    /// The fixed capacity `L` of the buffer.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of values pushed so far, saturating at the capacity.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Whether the buffer has wrapped at least once (i.e. holds `capacity`
    /// logical values).
    pub fn is_full(&self) -> bool {
        self.filled == self.capacity()
    }

    /// The paper's offset `O`: raw index of the newest slot.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Pushes the value for the next time point, overwriting the oldest slot.
    ///
    /// This is the O(1) window advance of Lemma 6.1.
    pub fn push(&mut self, value: Option<f64>) {
        self.offset = (self.offset + 1) % self.capacity();
        self.slots[self.offset] = value;
        if self.filled < self.capacity() {
            self.filled += 1;
        }
    }

    /// Raw slot access using the paper's modular index arithmetic
    /// (`s[(O ± x) % L]`).  `raw_index` is taken modulo the capacity.
    pub fn raw(&self, raw_index: usize) -> Option<f64> {
        self.slots[raw_index % self.capacity()]
    }

    /// Overwrites a raw slot; used by Algorithm 1 to store the imputed value
    /// back into `s[O]`.
    pub fn set_raw(&mut self, raw_index: usize, value: Option<f64>) {
        let cap = self.capacity();
        self.slots[raw_index % cap] = value;
    }

    /// Value `age` steps in the past: `recent(0)` is the newest value,
    /// `recent(capacity-1)` the oldest.
    ///
    /// Returns `None` when the slot is missing *or* `age` exceeds the number
    /// of values pushed so far.
    pub fn recent(&self, age: usize) -> Option<f64> {
        if age >= self.filled {
            return None;
        }
        let cap = self.capacity();
        let idx = (self.offset + cap - age) % cap;
        self.slots[idx]
    }

    /// Overwrites the value `age` steps in the past (0 = newest).
    ///
    /// Slots that have not been pushed yet cannot be written; such writes are
    /// ignored and `false` is returned.
    pub fn set_recent(&mut self, age: usize, value: Option<f64>) -> bool {
        if age >= self.filled {
            return false;
        }
        let cap = self.capacity();
        let idx = (self.offset + cap - age) % cap;
        self.slots[idx] = value;
        true
    }

    /// Returns the window contents ordered from oldest to newest, including
    /// missing slots, but only for slots that have actually been pushed.
    pub fn to_chronological(&self) -> Vec<Option<f64>> {
        (0..self.filled)
            .rev()
            .map(|age| {
                let cap = self.capacity();
                let idx = (self.offset + cap - age) % cap;
                self.slots[idx]
            })
            .collect()
    }

    /// Iterator over ages `0..len()` yielding `(age, value)` pairs, newest first.
    pub fn iter_recent(&self) -> impl Iterator<Item = (usize, Option<f64>)> + '_ {
        (0..self.filled).map(move |age| (age, self.recent(age)))
    }

    /// Number of missing slots among the pushed values.
    pub fn missing_count(&self) -> usize {
        self.iter_recent().filter(|(_, v)| v.is_none()).count()
    }

    /// Mean of the observed values in the buffer, or `None` if none observed.
    pub fn mean(&self) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (_, v) in self.iter_recent() {
            if let Some(x) = v {
                sum += x;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }
}

impl fmt::Debug for RingBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingBuffer")
            .field("capacity", &self.capacity())
            .field("len", &self.filled)
            .field("offset", &self.offset)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_buffer_is_all_missing() {
        let rb = RingBuffer::new(4);
        assert_eq!(rb.capacity(), 4);
        assert!(rb.is_empty());
        assert!(!rb.is_full());
        assert_eq!(rb.recent(0), None);
        assert_eq!(rb.missing_count(), 0); // nothing pushed yet
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = RingBuffer::new(0);
    }

    #[test]
    fn push_and_recent_track_ages() {
        let mut rb = RingBuffer::new(3);
        rb.push(Some(1.0));
        rb.push(Some(2.0));
        assert_eq!(rb.len(), 2);
        assert_eq!(rb.recent(0), Some(2.0));
        assert_eq!(rb.recent(1), Some(1.0));
        assert_eq!(rb.recent(2), None); // not yet pushed
        rb.push(Some(3.0));
        rb.push(Some(4.0)); // evicts 1.0
        assert!(rb.is_full());
        assert_eq!(rb.recent(0), Some(4.0));
        assert_eq!(rb.recent(1), Some(3.0));
        assert_eq!(rb.recent(2), Some(2.0));
        assert_eq!(rb.to_chronological(), vec![Some(2.0), Some(3.0), Some(4.0)]);
    }

    #[test]
    fn missing_values_round_trip() {
        let mut rb = RingBuffer::new(3);
        rb.push(Some(1.0));
        rb.push(None);
        rb.push(Some(3.0));
        assert_eq!(rb.missing_count(), 1);
        assert_eq!(rb.recent(1), None);
        assert!(rb.set_recent(1, Some(2.5)));
        assert_eq!(rb.recent(1), Some(2.5));
        assert_eq!(rb.missing_count(), 0);
    }

    #[test]
    fn set_recent_rejects_unpushed_slots() {
        let mut rb = RingBuffer::new(5);
        rb.push(Some(1.0));
        assert!(!rb.set_recent(3, Some(9.0)));
        assert_eq!(rb.recent(3), None);
    }

    #[test]
    fn raw_indexing_matches_paper_layout() {
        // After pushing values 10, 20, 30 into a capacity-3 buffer the newest
        // value must live at slots[offset] and the oldest at slots[(O+1)%L].
        let mut rb = RingBuffer::new(3);
        rb.push(Some(10.0));
        rb.push(Some(20.0));
        rb.push(Some(30.0));
        let o = rb.offset();
        assert_eq!(rb.raw(o), Some(30.0));
        assert_eq!(rb.raw(o + 1), Some(10.0)); // oldest
        assert_eq!(rb.raw(o + 2), Some(20.0));
        rb.set_raw(o, Some(31.0));
        assert_eq!(rb.recent(0), Some(31.0));
    }

    #[test]
    fn from_values_keeps_last_capacity_values() {
        let rb = RingBuffer::from_values(3, (1..=5).map(|i| Some(i as f64)));
        assert_eq!(rb.to_chronological(), vec![Some(3.0), Some(4.0), Some(5.0)]);
    }

    #[test]
    fn mean_ignores_missing() {
        let rb = RingBuffer::from_values(4, vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(rb.mean(), Some(2.0));
        let empty = RingBuffer::from_values(4, vec![None, None]);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn debug_is_compact() {
        let rb = RingBuffer::new(2);
        let s = format!("{rb:?}");
        assert!(s.contains("capacity"));
    }

    #[test]
    fn capacity_one_buffer_keeps_only_latest() {
        let mut rb = RingBuffer::new(1);
        rb.push(Some(1.0));
        rb.push(Some(2.0));
        assert_eq!(rb.recent(0), Some(2.0));
        assert_eq!(rb.recent(1), None);
        assert_eq!(rb.to_chronological(), vec![Some(2.0)]);
    }
}
