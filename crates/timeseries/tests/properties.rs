//! Property-based tests for the stream substrate invariants.

use proptest::prelude::*;

use tkcm_timeseries::{MissingMask, RingBuffer, SampleInterval, TimeSeries, Timestamp};

proptest! {
    /// Pushing values into a ring buffer and reading them back in
    /// chronological order always yields the last `capacity` pushed values.
    #[test]
    fn ring_buffer_keeps_the_most_recent_values(
        values in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 1..200),
        capacity in 1usize..32,
    ) {
        let mut rb = RingBuffer::new(capacity);
        for v in &values {
            rb.push(*v);
        }
        let chronological = rb.to_chronological();
        let expected: Vec<Option<f64>> = values
            .iter()
            .rev()
            .take(capacity)
            .rev()
            .copied()
            .collect();
        prop_assert_eq!(chronological, expected);
        prop_assert_eq!(rb.len(), values.len().min(capacity));
        // recent(0) is the last pushed value.
        prop_assert_eq!(rb.recent(0), *values.last().unwrap());
    }

    /// A series' missing mask decomposes it into gaps whose total length is
    /// the missing count, and every gap is a maximal run.
    #[test]
    fn missing_mask_gaps_partition_the_missing_ticks(
        values in proptest::collection::vec(proptest::option::of(-1e3f64..1e3), 0..120),
    ) {
        let series = TimeSeries::new(
            0u32,
            "p",
            Timestamp::new(0),
            SampleInterval::FIVE_MINUTES,
            values.clone(),
        );
        let mask = MissingMask::of_series(&series);
        let gaps = mask.gaps();
        let total: usize = gaps.iter().map(|g| g.length).sum();
        prop_assert_eq!(total, series.missing_count());
        for g in &gaps {
            prop_assert!(g.length > 0);
            // The tick before and after each gap (if inside the series) is observed.
            let before = g.start - 1;
            let after = g.end();
            if series.index_of(before).is_some() {
                prop_assert!(series.value_at(before).is_some());
            }
            if series.index_of(after).is_some() {
                prop_assert!(series.value_at(after).is_some());
            }
        }
    }

    /// Shifting a series never invents values: every observed value of the
    /// shifted copy equals the original value `shift` ticks earlier.
    #[test]
    fn shifted_series_is_a_lagged_view(
        values in proptest::collection::vec(-1e3f64..1e3, 1..100),
        shift in 0i64..30,
    ) {
        let series = TimeSeries::from_values(
            0u32,
            "s",
            Timestamp::new(0),
            SampleInterval::FIVE_MINUTES,
            values.clone(),
        );
        let shifted = series.shifted(shift);
        prop_assert_eq!(shifted.len(), series.len());
        for (t, v) in shifted.iter() {
            match v {
                Some(x) => prop_assert_eq!(Some(x), series.value_at(t - shift)),
                None => prop_assert!(series.index_of(t - shift).is_none()),
            }
        }
    }
}
