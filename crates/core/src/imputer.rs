//! The TKCM imputer: one missing value, one window, one set of references.
//!
//! This is the Rust counterpart of Algorithm 1 in the paper, organised around
//! the three steps of Section 6.1:
//!
//! 1. **Pattern extraction** — compute the dissimilarity `D[j]` of every
//!    candidate pattern in the window against the query pattern `P(t_n)`.
//! 2. **Pattern selection** — find the anchors of the `k` most similar
//!    non-overlapping patterns (dynamic program, or the greedy/overlapping
//!    ablation variants).
//! 3. **Value imputation** — average the values of the incomplete series at
//!    the anchor points (plain mean per Definition 4, or inverse-distance
//!    weighted as an optional extension).
//!
//! Besides the imputed value, the imputer reports the anchors, their
//! dissimilarities, the ε of Definition 5 and the phase timing breakdown.

use tkcm_timeseries::{SeriesId, SlotState, StreamingWindow, Timestamp, TsError};

use crate::config::{AnchorAggregation, TkcmConfig};
use crate::consistency::ConsistencyReport;
use crate::diagnostics::{Phase, PhaseBreakdown, PhaseTimer};
use crate::dissimilarity::{l2_from_components, Dissimilarity, L2Distance};
use crate::incremental::{IncrementalDissimilarity, ShortlistMaintainer};
use crate::pattern::{extract_pattern_at_age, extract_query_pattern, Pattern};
use crate::selection::{select_anchors, SelectionStrategy};
use crate::signature::{SignatureIndex, SignatureQuery};

/// One selected anchor: time point, dissimilarity of its pattern and the
/// value of the incomplete series there.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Anchor {
    /// The anchor time point `t_i`.
    pub time: Timestamp,
    /// Dissimilarity `δ(P(t_i), P(t_n))`.
    pub dissimilarity: f64,
    /// Value of the incomplete series `s(t_i)`; always an *observed* value —
    /// previously imputed values are never used as anchor values.
    pub value: f64,
}

/// Full result of imputing a single missing value.
#[derive(Clone, Debug, PartialEq)]
pub struct ImputationDetail {
    /// The series that was imputed.
    pub series: SeriesId,
    /// The time point that was imputed (`t_n`).
    pub time: Timestamp,
    /// The imputed value `ŝ(t_n)`.
    pub value: f64,
    /// The selected anchors, in chronological order.
    pub anchors: Vec<Anchor>,
    /// Reference series that formed the query pattern.
    pub references: Vec<SeriesId>,
    /// Whether the requested `k` anchors were found; `false` means the window
    /// did not contain enough usable patterns.
    pub complete: bool,
    /// Whether the value comes from the fallback rule (no usable anchors at
    /// all) rather than from Definition 4.
    pub fallback: bool,
    /// Phase timing of this single imputation.
    pub breakdown: PhaseBreakdown,
}

impl ImputationDetail {
    /// Consistency report (Definition 5 / 6) for this imputation.
    pub fn consistency(&self) -> ConsistencyReport {
        ConsistencyReport::new(
            self.anchors.iter().map(|a| a.time).collect(),
            self.anchors.iter().map(|a| a.value).collect(),
            self.value,
        )
    }

    /// The ε of Definition 5, if any anchors were found.
    pub fn epsilon(&self) -> Option<f64> {
        self.consistency().epsilon
    }
}

/// Counters from one signature-pruned imputation
/// ([`TkcmImputer::impute_pruned`] / [`TkcmImputer::impute_composed`]).
///
/// Kept *outside* [`ImputationDetail`] so pruned and exhaustive results stay
/// structurally comparable in the equivalence tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Total candidate lags in the window (`J = L − 2l + 1`, or fewer while
    /// the window is filling).
    pub candidates: usize,
    /// Candidates whose exact dissimilarity was evaluated.
    pub shortlisted: usize,
    /// Candidates disposed of without an exact evaluation: lower bound above
    /// the threshold, or a proven missing reference slot in strict mode.
    pub pruned: usize,
    /// Of `pruned` (composed path only): candidates skipped wholesale by the
    /// level-1 run prefilter — no per-lag lower bound was even computed.
    /// Counts every unresolved candidate of a skipped run, including ones
    /// anchor provenance would have disqualified anyway (the whole point is
    /// not to look at them individually).
    pub level1_skipped: usize,
    /// Of `pruned` (composed path only): candidates disposed of by a
    /// maintained shortlist entry's certified bound or its strict-mode pair
    /// count, before any signature lookup.
    pub maintained_pruned: usize,
    /// Lags carrying a maintained shortlist entry when the imputation began
    /// (0 for the pruned-only path).
    pub maintained_lags: usize,
}

impl std::ops::AddAssign for PruneStats {
    fn add_assign(&mut self, rhs: PruneStats) {
        self.candidates += rhs.candidates;
        self.shortlisted += rhs.shortlisted;
        self.pruned += rhs.pruned;
        self.level1_skipped += rhs.level1_skipped;
        self.maintained_pruned += rhs.maintained_pruned;
        self.maintained_lags += rhs.maintained_lags;
    }
}

impl PruneStats {
    /// Field-wise `self − earlier`, saturating at zero — the per-interval
    /// delta between two cumulative totals (saturating so a caller holding
    /// a stale "earlier" across an engine swap reports zero, not a panic).
    pub fn saturating_delta(&self, earlier: &PruneStats) -> PruneStats {
        PruneStats {
            candidates: self.candidates.saturating_sub(earlier.candidates),
            shortlisted: self.shortlisted.saturating_sub(earlier.shortlisted),
            pruned: self.pruned.saturating_sub(earlier.pruned),
            level1_skipped: self.level1_skipped.saturating_sub(earlier.level1_skipped),
            maintained_pruned: self
                .maintained_pruned
                .saturating_sub(earlier.maintained_pruned),
            maintained_lags: self.maintained_lags.saturating_sub(earlier.maintained_lags),
        }
    }
}

/// TKCM imputation of a single missing value over a streaming window.
pub struct TkcmImputer {
    config: TkcmConfig,
    dissimilarity: Box<dyn Dissimilarity>,
}

impl TkcmImputer {
    /// Creates an imputer with the paper's L2 dissimilarity.
    pub fn new(config: TkcmConfig) -> Result<Self, TsError> {
        config.validate()?;
        Ok(TkcmImputer {
            config,
            dissimilarity: Box::new(L2Distance),
        })
    }

    /// Creates an imputer with a custom dissimilarity measure (L1, DTW, ...).
    pub fn with_dissimilarity(
        config: TkcmConfig,
        dissimilarity: Box<dyn Dissimilarity>,
    ) -> Result<Self, TsError> {
        config.validate()?;
        Ok(TkcmImputer {
            config,
            dissimilarity,
        })
    }

    /// The configuration the imputer runs with.
    pub fn config(&self) -> &TkcmConfig {
        &self.config
    }

    /// Name of the dissimilarity measure in use.
    pub fn dissimilarity_name(&self) -> &'static str {
        self.dissimilarity.name()
    }

    /// Whether this imputer's dissimilarity measure can be maintained
    /// incrementally (Section 6.2); only the paper's L2 measure decomposes
    /// into the required per-column sliding aggregate.
    pub fn supports_incremental(&self) -> bool {
        self.dissimilarity.supports_incremental()
    }

    /// Imputes the value of `target` at the *current time* of the window.
    ///
    /// `references` is the reference set `R_s` selected for this tick (see
    /// [`tkcm_timeseries::Catalog::select_references`]); its length may be
    /// smaller than `d` when not enough candidates are alive.
    ///
    /// The imputed value is **not** written back into the window; callers
    /// that want the paper's write-back behaviour (so later patterns can use
    /// the imputed history) should call
    /// [`StreamingWindow::write_imputed`] with the returned value — the
    /// streaming engine does exactly that.
    pub fn impute(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
    ) -> Result<ImputationDetail, TsError> {
        self.impute_inner(window, target, references, None)
    }

    /// Imputes like [`TkcmImputer::impute`], but reads the dissimilarity
    /// array `D[j]` from an incrementally maintained state (Section 6.2)
    /// instead of recomputing every candidate pattern: `O(L)` for the
    /// candidate sweep instead of `O(L·l·d)`.
    ///
    /// `state` must have been built for the same reference set, pattern
    /// length and missing-value policy, and must be in lock-step with the
    /// window (its [`IncrementalDissimilarity::advance`] called after every
    /// pushed tick) — otherwise an error is returned.  The streaming engine
    /// manages this automatically when `TkcmConfig::incremental` is on.
    pub fn impute_maintained(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        state: &IncrementalDissimilarity,
    ) -> Result<ImputationDetail, TsError> {
        if !self.supports_incremental() {
            return Err(TsError::invalid(
                "dissimilarity",
                "this dissimilarity measure cannot be maintained incrementally",
            ));
        }
        state.ensure_compatible(
            window,
            references,
            self.config.pattern_length,
            self.config.allow_missing_in_patterns,
        )?;
        self.impute_inner(window, target, references, Some(state))
    }

    fn impute_inner(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        maintained: Option<&IncrementalDissimilarity>,
    ) -> Result<ImputationDetail, TsError> {
        let now = window
            .current_time()
            .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
        if references.is_empty() {
            return Err(TsError::invalid(
                "references",
                "TKCM needs at least one reference series",
            ));
        }
        let l = self.config.pattern_length;
        let mut timer = PhaseTimer::new();

        // -------- Step 1: pattern extraction --------
        timer.start(Phase::Extraction);

        // Effective window content: we can only look back over the ticks that
        // have actually been pushed.
        let filled = window.filled();
        // Candidate anchors have ages l ..= filled - l (condition (1) of
        // Definition 3); candidate j (1-based, oldest first) has age
        // filled - l - (j - 1) - ... expressed directly below.
        let mut dissimilarities: Vec<f64> = Vec::new();
        let mut candidate_ages: Vec<usize> = Vec::new();
        if filled >= 2 * l {
            let oldest_age = filled - l; // j = 1
            let newest_age = l; // j = J
            for age in (newest_age..=oldest_age).rev() {
                candidate_ages.push(age);
            }
            dissimilarities = vec![f64::INFINITY; candidate_ages.len()];
            match maintained {
                Some(state) => {
                    for (idx, &age) in candidate_ages.iter().enumerate() {
                        // Same anchor-eligibility rule as the exact path
                        // below: anchors need an *observed* target value.
                        if window.slot_recent(target, age)?.state != SlotState::Observed {
                            continue;
                        }
                        dissimilarities[idx] = state.dissimilarity_at_lag(age);
                    }
                }
                None => {
                    let query = extract_query_pattern(
                        window,
                        references,
                        l,
                        self.config.allow_missing_in_patterns,
                    )?;
                    if let Some(ref q) = query {
                        for (idx, &age) in candidate_ages.iter().enumerate() {
                            // The target value at the anchor must be *observed* to
                            // contribute to the average of Definition 4. Previously
                            // imputed values stay usable inside reference patterns
                            // (Example 1), but feeding them back as anchor values
                            // would let the imputer average its own guesses — during
                            // long outages the most similar patterns are the ones
                            // immediately behind the query, so the error compounds
                            // tick after tick. Checked before pattern extraction so
                            // disqualified candidates don't pay the O(d·l) copy.
                            if window.slot_recent(target, age)?.state != SlotState::Observed {
                                continue;
                            }
                            let candidate = extract_pattern_at_age(
                                window,
                                references,
                                age,
                                l,
                                self.config.allow_missing_in_patterns,
                            )?;
                            let Some(candidate) = candidate else { continue };
                            dissimilarities[idx] = self.dissimilarity.distance(&candidate, q);
                        }
                    }
                }
            }
        }

        self.select_and_impute(
            window,
            target,
            references,
            now,
            &candidate_ages,
            &dissimilarities,
            timer,
        )
    }

    /// Steps 2 and 3 — pattern selection and value imputation — shared
    /// verbatim by the exact, maintained and pruned extraction paths, so the
    /// bit-identity of the pruned path cannot drift through a divergent tail.
    #[allow(clippy::too_many_arguments)]
    fn select_and_impute(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        now: Timestamp,
        candidate_ages: &[usize],
        dissimilarities: &[f64],
        mut timer: PhaseTimer,
    ) -> Result<ImputationDetail, TsError> {
        let l = self.config.pattern_length;
        let k = self.config.anchor_count;

        // -------- Step 2: pattern selection --------
        timer.start(Phase::Selection);
        let selection = select_anchors(self.config.selection, dissimilarities, l, k);

        // -------- Step 3: value imputation --------
        timer.start(Phase::Imputation);
        let mut anchors = Vec::with_capacity(selection.indices.len());
        for &idx in &selection.indices {
            let age = candidate_ages[idx];
            let value = window
                .value_recent(target, age)?
                .expect("anchor candidates require an observed target value");
            anchors.push(Anchor {
                // The anchor's real tick time, read from the window's stored
                // per-tick times — `now - age` would only be correct for a
                // one-timestamp-unit cadence.
                time: window
                    .time_of_age(age)
                    .expect("anchor candidates lie inside the pushed window"),
                dissimilarity: dissimilarities[idx],
                value,
            });
        }
        anchors.sort_by_key(|a| a.time);

        let (value, fallback) = if anchors.is_empty() {
            (self.fallback_value(window, target, references)?, true)
        } else {
            (self.aggregate(&anchors), false)
        };
        timer.finish_imputation();

        Ok(ImputationDetail {
            series: target,
            time: now,
            value,
            anchors,
            references: references.to_vec(),
            complete: selection.complete,
            fallback,
            breakdown: timer.breakdown(),
        })
    }

    /// Exact dissimilarity of the candidate anchored `age` ticks back — the
    /// identical expression the exhaustive path uses, so a shortlisted
    /// candidate's `D[j]` is bit-equal in both paths.
    ///
    /// The exhaustive path materializes a [`Pattern`] per candidate and
    /// calls `Dissimilarity::distance`; doing that per *shortlisted*
    /// candidate would put an allocation on the pruned hot path, so this
    /// reads the window directly and folds the pairs through the same
    /// `l2_components` recurrence in the same order — reference-major,
    /// chronological within a reference, `sum += (x−y)·(x−y)` left to right,
    /// then [`l2_from_components`] — which makes the result bit-equal, not
    /// just approximately equal.  (The pruned path only runs for measures
    /// with `supports_incremental()`, whose documented contract is exactly
    /// "decomposes into `l2_components`".)
    fn exact_candidate(
        &self,
        window: &StreamingWindow,
        references: &[SeriesId],
        query: &Pattern,
        age: usize,
    ) -> Result<f64, TsError> {
        Ok(
            match self.exact_candidate_components(window, references, query, age)? {
                Some((sum_sq, observed)) => l2_from_components(
                    sum_sq,
                    observed,
                    references.len() * self.config.pattern_length,
                ),
                None => f64::INFINITY,
            },
        )
    }

    /// The raw components of [`Self::exact_candidate`]'s fold: `Ok(None)`
    /// when strict extraction fails (a missing candidate slot with
    /// `allow_missing = false` ⇒ `D = +∞` with no components), else the
    /// accumulator and pair count whose [`l2_from_components`] fold *is* the
    /// candidate's exact `D`.  Exposed separately so the composed path can
    /// seed [`ShortlistMaintainer`] entries from the fold's own bits.
    fn exact_candidate_components(
        &self,
        window: &StreamingWindow,
        references: &[SeriesId],
        query: &Pattern,
        age: usize,
    ) -> Result<Option<(f64, usize)>, TsError> {
        let l = self.config.pattern_length;
        let allow_missing = self.config.allow_missing_in_patterns;
        let mut sum_sq = 0.0f64;
        let mut observed = 0usize;
        for (ri, &r) in references.iter().enumerate() {
            // Column 0 is the oldest tick — same walk as
            // `extract_pattern_at_age`.
            for (col, &q_slot) in query.row(ri).iter().enumerate() {
                let x = window.value_recent(r, age + (l - 1 - col))?;
                if x.is_none() && !allow_missing {
                    // Strict extraction would return `None` ⇒ `D = +∞`.
                    return Ok(None);
                }
                if let (Some(x), Some(y)) = (x, q_slot) {
                    sum_sq += (x - y) * (x - y);
                    observed += 1;
                }
            }
        }
        Ok(Some((sum_sq, observed)))
    }

    /// Exact-evaluates a candidate and (re-)seeds its shortlist entry from
    /// the fold's own `(sum_sq, observed)` components — re-admission of a
    /// previously pruned lag therefore costs nothing beyond the exact
    /// evaluation, and the re-seeded aggregates are bit-identical to the
    /// exact fold by construction (the shortlist-maintenance invariant).
    fn evaluate_and_seed(
        &self,
        window: &StreamingWindow,
        references: &[SeriesId],
        query: &Pattern,
        age: usize,
        shortlist: &mut ShortlistMaintainer,
    ) -> Result<f64, TsError> {
        match self.exact_candidate_components(window, references, query, age)? {
            Some((sum_sq, observed)) => {
                shortlist.seed(age, sum_sq, observed as u32);
                Ok(l2_from_components(
                    sum_sq,
                    observed,
                    references.len() * self.config.pattern_length,
                ))
            }
            None => Ok(f64::INFINITY),
        }
    }

    /// Imputes like [`TkcmImputer::impute`], but uses the signature `index`
    /// to *prune* the candidate space before exact evaluation: a gap-aware
    /// lower bound `LB[j] ≤ D[j]` is compared against the float sum `τ` of a
    /// feasible k-anchor solution, and candidates with `LB[j] > τ` are
    /// provably outside every optimal selection, so their `D[j]` stays `+∞`
    /// unevaluated.  The result is **bit-identical** to
    /// [`TkcmImputer::impute`] — see the admissibility argument in
    /// [`crate::signature`] and the float-level proof in the comments below.
    ///
    /// Requires dynamic-programming selection (the sum-objective the bound
    /// is admissible for) and an incrementally decomposable dissimilarity
    /// (L2), and `index` must be in lock-step with `window`; the streaming
    /// engine manages this automatically when `TkcmConfig::pruning` is on.
    pub fn impute_pruned(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        index: &SignatureIndex,
    ) -> Result<(ImputationDetail, PruneStats), TsError> {
        self.impute_pruned_impl(window, target, references, index, 1.0)
    }

    /// Test-only entry: like [`TkcmImputer::impute_pruned`] but inflating
    /// every lower bound by `factor` — a deliberately *inadmissible* bound
    /// for `factor > 1`.  Exists so the equivalence suite can prove it
    /// detects over-pruning; never call it with `factor != 1.0` outside
    /// tests.
    #[doc(hidden)]
    pub fn impute_pruned_with_inflation(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        index: &SignatureIndex,
        factor: f64,
    ) -> Result<(ImputationDetail, PruneStats), TsError> {
        self.impute_pruned_impl(window, target, references, index, factor)
    }

    fn impute_pruned_impl(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        index: &SignatureIndex,
        inflate: f64,
    ) -> Result<(ImputationDetail, PruneStats), TsError> {
        if self.config.selection != SelectionStrategy::DynamicProgramming {
            return Err(TsError::invalid(
                "selection",
                "signature pruning is only admissible for the dynamic-programming \
                 sum objective; greedy/overlapping selection must run exhaustively",
            ));
        }
        if !self.supports_incremental() {
            return Err(TsError::invalid(
                "dissimilarity",
                "signature pruning requires the decomposable L2 measure",
            ));
        }
        if !index.is_synced(window) || index.width() != window.width() {
            return Err(TsError::invalid(
                "signature",
                "signature index is not in lock-step with the window",
            ));
        }
        let now = window
            .current_time()
            .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
        if references.is_empty() {
            return Err(TsError::invalid(
                "references",
                "TKCM needs at least one reference series",
            ));
        }
        let l = self.config.pattern_length;
        let k = self.config.anchor_count;
        let mut timer = PhaseTimer::new();

        // -------- Step 1: pattern extraction, pruned --------
        timer.start(Phase::Extraction);
        let filled = window.filled();
        let mut dissimilarities: Vec<f64> = Vec::new();
        let mut candidate_ages: Vec<usize> = Vec::new();
        let mut stats = PruneStats::default();
        if filled >= 2 * l {
            let oldest_age = filled - l;
            let newest_age = l;
            for age in (newest_age..=oldest_age).rev() {
                candidate_ages.push(age);
            }
            let j = candidate_ages.len();
            stats.candidates = j;
            dissimilarities = vec![f64::INFINITY; j];
            let query = extract_query_pattern(
                window,
                references,
                l,
                self.config.allow_missing_in_patterns,
            )?;
            if let Some(ref q) = query {
                // Lower-bound pass: O(J · d · l / B) against the block
                // envelopes instead of O(J · d · l) exact extraction.  The
                // query side of the bound is the exact extracted pattern
                // (range tables built once, reused for every candidate).
                let rows: Vec<&[Option<f64>]> = (0..references.len()).map(|ri| q.row(ri)).collect();
                let sig_query = SignatureQuery::new(&rows);
                let mut lb = vec![0.0f64; j];
                let mut open = vec![true; j];
                for (idx, &age) in candidate_ages.iter().enumerate() {
                    // Same O(1) anchor-provenance disqualification as the
                    // exhaustive path: anchors need an observed target value.
                    if window.slot_recent(target, age)?.state != SlotState::Observed {
                        open[idx] = false;
                        continue;
                    }
                    let (lb_sq, certain_missing) =
                        index.lower_bound_sq_with_query(references, age, l, &sig_query);
                    if certain_missing && !self.config.allow_missing_in_patterns {
                        // A block fully inside the candidate range has a
                        // missing slot, so strict extraction returns `None`
                        // and `D = +∞` *exactly* — no evaluation needed.
                        open[idx] = false;
                        stats.pruned += 1;
                        continue;
                    }
                    lb[idx] = (lb_sq * inflate).max(0.0).sqrt();
                }

                let mut evaluated = vec![false; j];
                // Seed: a feasible set of k non-overlapping finite-D
                // candidates, found greedily in ascending-LB order (ties by
                // index) so its sum τ is tight.  Candidate ages are
                // consecutive, so candidates overlap iff their indices are
                // closer than l.
                let mut order: Vec<usize> = (0..j).filter(|&i| open[i]).collect();
                // Partial selection instead of a full O(J log J) sort: only
                // the smallest-LB pool can seed, and the pool is large
                // enough that k non-overlapping members essentially always
                // exist (each seed excludes < 2l neighbours).  Seed choice
                // only affects how *tight* τ is — any feasible seed keeps
                // the pruning admissible — so truncation never costs
                // correctness, and the earliest-end fallback below covers
                // the degenerate pool.
                let pool = (4 * k * l).max(256);
                if order.len() > pool {
                    order.select_nth_unstable_by(pool, |&a, &b| {
                        lb[a].total_cmp(&lb[b]).then(a.cmp(&b))
                    });
                    order.truncate(pool);
                }
                order.sort_by(|&a, &b| lb[a].total_cmp(&lb[b]).then(a.cmp(&b)));
                let mut seed: Vec<usize> = Vec::new();
                for &idx in &order {
                    if seed.len() == k {
                        break;
                    }
                    if seed.iter().any(|&p| idx.abs_diff(p) < l) {
                        continue;
                    }
                    if !evaluated[idx] {
                        dissimilarities[idx] =
                            self.exact_candidate(window, references, q, candidate_ages[idx])?;
                        evaluated[idx] = true;
                        stats.shortlisted += 1;
                    }
                    if dissimilarities[idx].is_finite() {
                        seed.push(idx);
                    }
                }
                if seed.len() < k {
                    // Retry earliest-end greedy, which maximises the number
                    // of non-overlapping finite candidates.
                    seed.clear();
                    let mut next_free = 0usize;
                    for idx in 0..j {
                        if seed.len() == k {
                            break;
                        }
                        if idx < next_free || !open[idx] {
                            continue;
                        }
                        if !evaluated[idx] {
                            dissimilarities[idx] =
                                self.exact_candidate(window, references, q, candidate_ages[idx])?;
                            evaluated[idx] = true;
                            stats.shortlisted += 1;
                        }
                        if dissimilarities[idx].is_finite() {
                            seed.push(idx);
                            next_free = idx + l;
                        }
                    }
                }
                if seed.len() >= k {
                    // τ is the *float* value the DP assigns to the seed
                    // subset: the DP accumulates "take" steps innermost-
                    // first by ascending candidate index (`D[j_i] + acc`),
                    // so folding the seed the same way gives exactly
                    // `m_exact[k][J] ≤ τ` at the bit level.  Any candidate
                    // with `D > τ` then satisfies: every DP cell on a path
                    // through it has fl-value > τ (an fl-sum of nonnegative
                    // terms is ≥ each term), so all cells with value ≤ τ —
                    // including the whole backtrack of the optimal solution
                    // — are unchanged by leaving such candidates at +∞.
                    seed.sort_unstable();
                    let mut tau = 0.0f64;
                    for &idx in &seed {
                        // Written `D + acc`, not `acc + D`, to mirror the
                        // DP's take-step expression verbatim (IEEE addition
                        // is commutative, but the proof reads better when
                        // the expressions match token for token).
                        #[allow(clippy::assign_op_pattern)]
                        {
                            tau = dissimilarities[idx] + tau;
                        }
                    }
                    // The slack only *reduces* pruning (never admits an
                    // unsafe prune): LB > τ·(1+ε) ⇒ D ≥ LB > τ.
                    let threshold = tau * (1.0 + 1e-9);
                    for idx in 0..j {
                        if !open[idx] || evaluated[idx] {
                            continue;
                        }
                        if lb[idx] > threshold {
                            stats.pruned += 1;
                            continue;
                        }
                        dissimilarities[idx] =
                            self.exact_candidate(window, references, q, candidate_ages[idx])?;
                        evaluated[idx] = true;
                        stats.shortlisted += 1;
                    }
                } else {
                    // No feasible k-solution certified: fall back to the
                    // exhaustive sweep (rare — degenerate windows).
                    for idx in 0..j {
                        if open[idx] && !evaluated[idx] {
                            dissimilarities[idx] =
                                self.exact_candidate(window, references, q, candidate_ages[idx])?;
                            evaluated[idx] = true;
                            stats.shortlisted += 1;
                        }
                    }
                }
            }
        }

        let detail = self.select_and_impute(
            window,
            target,
            references,
            now,
            &candidate_ages,
            &dissimilarities,
            timer,
        )?;
        Ok((detail, stats))
    }

    /// Imputes like [`TkcmImputer::impute_pruned`], but *composes* pruning
    /// with incremental maintenance.  Three layers run before any exact
    /// evaluation, cheapest first:
    ///
    /// 1. **Maintained-first τ-seeding** — the [`ShortlistMaintainer`]'s
    ///    entries, ordered by their approximate sums, nominate the feasible
    ///    k-solution; usually k exact evaluations replace the pruned path's
    ///    O(J·d·l/B) seeding sweep.  A cold maintainer falls back to the
    ///    PR-7 lower-bound-sweep seeding (and re-seeds itself in passing).
    /// 2. **Level-1 run prefilter** — one
    ///    [`SignatureIndex::run_lower_bound_sq_with_query`] bound per run of
    ///    `run_len` consecutive lags skips whole runs above the threshold,
    ///    cutting the O(J) per-lag sweep itself.
    /// 3. **Per-survivor bounds** — a maintained entry's certified bound
    ///    (near-exact, catching candidates whose envelopes overlap the
    ///    query) and then the level-0 signature bound; only candidates that
    ///    survive all three are exact-evaluated, and every evaluation
    ///    re-seeds the maintainer for the next imputation.
    ///
    /// All bounds are admissible and every `D` entering selection comes from
    /// the exact fold, so the result is **bit-identical** to
    /// [`TkcmImputer::impute`] by the same argument as the pruned path.
    /// `run_len` is the level-1 run width, picked once at engine
    /// construction from config geometry
    /// ([`crate::signature::level1_run_len`]).
    pub fn impute_composed(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        index: &SignatureIndex,
        shortlist: &mut ShortlistMaintainer,
        run_len: usize,
    ) -> Result<(ImputationDetail, PruneStats), TsError> {
        self.impute_composed_impl(
            window, target, references, index, shortlist, run_len, 1.0, 1.0,
        )
    }

    /// Test-only entry: like [`TkcmImputer::impute_composed`] but inflating
    /// the level-0 per-lag bounds by `inflate0` and the level-1 run bounds
    /// by `inflate1` — deliberately *inadmissible* for factors > 1, so the
    /// equivalence suite can prove over-pruning at either level is caught.
    /// Never call it with factors != 1.0 outside tests.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn impute_composed_with_inflation(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        index: &SignatureIndex,
        shortlist: &mut ShortlistMaintainer,
        run_len: usize,
        inflate0: f64,
        inflate1: f64,
    ) -> Result<(ImputationDetail, PruneStats), TsError> {
        self.impute_composed_impl(
            window, target, references, index, shortlist, run_len, inflate0, inflate1,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn impute_composed_impl(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
        index: &SignatureIndex,
        shortlist: &mut ShortlistMaintainer,
        run_len: usize,
        inflate0: f64,
        inflate1: f64,
    ) -> Result<(ImputationDetail, PruneStats), TsError> {
        if self.config.selection != SelectionStrategy::DynamicProgramming {
            return Err(TsError::invalid(
                "selection",
                "signature pruning is only admissible for the dynamic-programming \
                 sum objective; greedy/overlapping selection must run exhaustively",
            ));
        }
        if !self.supports_incremental() {
            return Err(TsError::invalid(
                "dissimilarity",
                "the composed path requires the decomposable L2 measure",
            ));
        }
        if !index.is_synced(window) || index.width() != window.width() {
            return Err(TsError::invalid(
                "signature",
                "signature index is not in lock-step with the window",
            ));
        }
        if run_len == 0 {
            return Err(TsError::invalid(
                "run_len",
                "level-1 run length must be positive",
            ));
        }
        shortlist.ensure_compatible(
            window,
            references,
            self.config.pattern_length,
            self.config.allow_missing_in_patterns,
        )?;
        let now = window
            .current_time()
            .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
        if references.is_empty() {
            return Err(TsError::invalid(
                "references",
                "TKCM needs at least one reference series",
            ));
        }
        let l = self.config.pattern_length;
        let k = self.config.anchor_count;
        let mut timer = PhaseTimer::new();

        // -------- Step 1: pattern extraction, composed --------
        timer.start(Phase::Extraction);
        let filled = window.filled();
        let mut dissimilarities: Vec<f64> = Vec::new();
        let mut candidate_ages: Vec<usize> = Vec::new();
        let mut stats = PruneStats {
            maintained_lags: shortlist.maintained_lags(),
            ..PruneStats::default()
        };
        if filled >= 2 * l {
            let oldest_age = filled - l;
            let newest_age = l;
            for age in (newest_age..=oldest_age).rev() {
                candidate_ages.push(age);
            }
            let j = candidate_ages.len();
            stats.candidates = j;
            dissimilarities = vec![f64::INFINITY; j];
            let query = extract_query_pattern(
                window,
                references,
                l,
                self.config.allow_missing_in_patterns,
            )?;
            if let Some(ref q) = query {
                let rows: Vec<&[Option<f64>]> = (0..references.len()).map(|ri| q.row(ri)).collect();
                let sig_query = SignatureQuery::new(&rows);
                let strict = !self.config.allow_missing_in_patterns;
                // `resolved[idx]`: D[idx] is final — exact-evaluated, pruned
                // (stays +∞) or provenance-disqualified; the sweeps below
                // skip it.
                let mut resolved = vec![false; j];

                // ---- Seed a feasible k-solution, maintained-first ----
                // The maintainer orders its lags by approximate sum, so the
                // greedy walk usually certifies k tight seeds after exactly
                // k exact evaluations — no O(J) sweep.  The candidate lag
                // *is* the window age of its anchor (`lag = t_n − t_j`).
                let mut seed: Vec<usize> = Vec::new();
                for lag in shortlist.lags_by_sum() {
                    if seed.len() == k {
                        break;
                    }
                    if lag < newest_age || lag > oldest_age {
                        continue;
                    }
                    let idx = oldest_age - lag;
                    if seed.iter().any(|&p| idx.abs_diff(p) < l) {
                        continue;
                    }
                    if window.slot_recent(target, lag)?.state != SlotState::Observed {
                        continue;
                    }
                    if !resolved[idx] {
                        dissimilarities[idx] =
                            self.evaluate_and_seed(window, references, q, lag, shortlist)?;
                        resolved[idx] = true;
                        stats.shortlisted += 1;
                    }
                    if dissimilarities[idx].is_finite() {
                        seed.push(idx);
                    }
                }
                if seed.len() < k {
                    // Cold start / post-desync: too few maintained entries
                    // to certify a k-solution.  Fall back to the pruned
                    // path's seeding — one level-0 lower-bound sweep,
                    // smallest-LB pool first, then earliest-end greedy.
                    // This is the one place the composed path pays the O(J)
                    // per-lag sweep; every evaluation re-seeds the
                    // maintainer, so the next imputation will not.
                    let mut lb = vec![0.0f64; j];
                    let mut open = vec![true; j];
                    for (idx, &age) in candidate_ages.iter().enumerate() {
                        if resolved[idx] {
                            if dissimilarities[idx].is_finite() {
                                // Already exact: its D is its own tightest
                                // "lower bound" for pool ordering.
                                lb[idx] = dissimilarities[idx];
                            } else {
                                open[idx] = false;
                            }
                            continue;
                        }
                        if window.slot_recent(target, age)?.state != SlotState::Observed {
                            open[idx] = false;
                            continue;
                        }
                        let (lb_sq, certain_missing) =
                            index.lower_bound_sq_with_query(references, age, l, &sig_query);
                        if certain_missing && strict {
                            open[idx] = false;
                            resolved[idx] = true;
                            stats.pruned += 1;
                            continue;
                        }
                        lb[idx] = (lb_sq * inflate0).max(0.0).sqrt();
                    }
                    let mut order: Vec<usize> = (0..j).filter(|&i| open[i]).collect();
                    let pool = (4 * k * l).max(256);
                    if order.len() > pool {
                        order.select_nth_unstable_by(pool, |&a, &b| {
                            lb[a].total_cmp(&lb[b]).then(a.cmp(&b))
                        });
                        order.truncate(pool);
                    }
                    order.sort_by(|&a, &b| lb[a].total_cmp(&lb[b]).then(a.cmp(&b)));
                    seed.clear();
                    for &idx in &order {
                        if seed.len() == k {
                            break;
                        }
                        if seed.iter().any(|&p| idx.abs_diff(p) < l) {
                            continue;
                        }
                        if !resolved[idx] {
                            dissimilarities[idx] = self.evaluate_and_seed(
                                window,
                                references,
                                q,
                                candidate_ages[idx],
                                shortlist,
                            )?;
                            resolved[idx] = true;
                            stats.shortlisted += 1;
                        }
                        if dissimilarities[idx].is_finite() {
                            seed.push(idx);
                        }
                    }
                    if seed.len() < k {
                        seed.clear();
                        let mut next_free = 0usize;
                        for idx in 0..j {
                            if seed.len() == k {
                                break;
                            }
                            if idx < next_free || !open[idx] {
                                continue;
                            }
                            if !resolved[idx] {
                                dissimilarities[idx] = self.evaluate_and_seed(
                                    window,
                                    references,
                                    q,
                                    candidate_ages[idx],
                                    shortlist,
                                )?;
                                resolved[idx] = true;
                                stats.shortlisted += 1;
                            }
                            if dissimilarities[idx].is_finite() {
                                seed.push(idx);
                                next_free = idx + l;
                            }
                        }
                    }
                }
                if seed.len() >= k {
                    // τ: the float value the DP assigns to the seed subset,
                    // folded in ascending index order — the DP's take-step
                    // order; see impute_pruned_impl for the bit-level
                    // admissibility argument, which is unchanged here.
                    seed.sort_unstable();
                    let mut tau = 0.0f64;
                    for &idx in &seed {
                        #[allow(clippy::assign_op_pattern)]
                        {
                            tau = dissimilarities[idx] + tau;
                        }
                    }
                    let threshold = tau * (1.0 + 1e-9);

                    // ---- Pass 1: level-1 run prefilter + per-lag bounds ----
                    // Exactly the pruned path's per-candidate test (`bound >
                    // threshold` proves the candidate outside every optimal
                    // selection), but survivors keep their tightest bound for
                    // pass 2 instead of being exact-evaluated on the spot.
                    let mut survivors: Vec<(usize, f64)> = Vec::new();
                    let mut s = 0usize;
                    while s < j {
                        let e = (s + run_len).min(j);
                        // Candidate index ascends oldest-first, so the run's
                        // smallest lag is its *last* candidate.
                        let lag_lo = candidate_ages[e - 1];
                        let run_sq = index.run_lower_bound_sq_with_query(
                            references,
                            lag_lo,
                            e - s,
                            l,
                            &sig_query,
                        );
                        if (run_sq * inflate1).max(0.0).sqrt() > threshold {
                            // Every lag in the run is provably outside any
                            // optimal selection — skip it wholesale.  (A run
                            // holding a finite seed can never trip this: the
                            // admissible run bound is ≤ that seed's D ≤ τ.)
                            for slot in resolved[s..e].iter_mut() {
                                if !*slot {
                                    *slot = true;
                                    stats.pruned += 1;
                                    stats.level1_skipped += 1;
                                }
                            }
                            s = e;
                            continue;
                        }
                        for idx in s..e {
                            if resolved[idx] {
                                continue;
                            }
                            let age = candidate_ages[idx];
                            if window.slot_recent(target, age)?.state != SlotState::Observed {
                                resolved[idx] = true;
                                continue;
                            }
                            // Maintained certified bound first: near-exact
                            // and cheapest, and it catches exactly the
                            // candidates whose envelopes overlap the query —
                            // where the signature bound is weakest.
                            let mut lb = 0.0f64;
                            if let Some(b) = shortlist.bound(age) {
                                if b.certain_missing {
                                    // The integer pair count proves a missing
                                    // pair: strict extraction yields D = +∞
                                    // *exactly*, same as the exact path.
                                    shortlist.touch(age);
                                    resolved[idx] = true;
                                    stats.pruned += 1;
                                    stats.maintained_pruned += 1;
                                    continue;
                                }
                                lb = b.lb_sq.sqrt();
                                if lb > threshold {
                                    shortlist.touch(age);
                                    resolved[idx] = true;
                                    stats.pruned += 1;
                                    stats.maintained_pruned += 1;
                                    continue;
                                }
                            }
                            let (lb_sq, certain_missing) =
                                index.lower_bound_sq_with_query(references, age, l, &sig_query);
                            if certain_missing && strict {
                                resolved[idx] = true;
                                stats.pruned += 1;
                                continue;
                            }
                            let sig_lb = (lb_sq * inflate0).max(0.0).sqrt();
                            if sig_lb > threshold {
                                resolved[idx] = true;
                                stats.pruned += 1;
                                continue;
                            }
                            // The max of two admissible bounds is admissible.
                            survivors.push((idx, lb.max(sig_lb)));
                        }
                        s = e;
                    }

                    // ---- Pass 2: ascending-bound sweep under a tightening
                    // per-candidate threshold ----
                    //
                    // Candidate j can sit in a k-anchor selection of value
                    // ≤ τ only if D[j] ≤ τ − Σ(the other k−1 members' Ds).
                    // Each member's D is at least its entry in a *pool* that
                    // assigns every potentially selectable candidate a value
                    // ≤ its exact D — the exact D where one was computed, the
                    // admissible bound otherwise — so Σ(others) is at least
                    // the sum S of the k−1 smallest pool values, and
                    // `bound > threshold − S` proves j outside every optimal
                    // selection: pass 1's test with a sharper right-hand side
                    // (S converges toward the k−1 best exact Ds, so the bar
                    // falls from the k-sum τ toward the k-th best D).  Pass-1
                    // prunes are safely absent from the pool: admissibility
                    // puts them in no optimal selection, and their bounds
                    // exceed τ ≥ every seed D so they can never be among the
                    // k−1 smallest anyway.  Walking survivors in ascending
                    // bound order makes S monotone non-decreasing (an
                    // evaluation replaces a pool bound with the larger exact
                    // D; the walk pointer moves onto later, larger bounds),
                    // so the first survivor over the bar proves every
                    // remaining one out wholesale.
                    //
                    // Float slop: `threshold` already carries the 1e-9
                    // inflation of the pruned path's proof; S is a ≤(k−1)-term
                    // fold of non-negative floats deflated by 1e-9, which
                    // dwarfs its relative rounding, and the final subtraction
                    // adds at most one ulp of τ — absorbed by the same
                    // margins.
                    survivors.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                    // Evaluated-value pool: every exact D computed so far
                    // (seeds plus seeding-walk evaluations that missed the
                    // seed set), trimmed to the k−1 smallest — larger values
                    // can never enter the k−1 smallest of a merge.
                    let keep = k.saturating_sub(1);
                    let mut best: Vec<f64> = (0..j)
                        .filter(|&i| resolved[i] && dissimilarities[i].is_finite())
                        .map(|i| dissimilarities[i])
                        .collect();
                    best.sort_unstable_by(f64::total_cmp);
                    best.truncate(keep);
                    for pos in 0..survivors.len() {
                        let (idx, lb) = survivors[pos];
                        // S: the k−1 smallest of (evaluated pool ∪ remaining
                        // bounds); both sides are sorted, so merge the heads.
                        // Including j's own bound only lowers S — safe.
                        let mut sum = 0.0f64;
                        let (mut bi, mut si) = (0usize, pos);
                        for _ in 0..keep {
                            let b_v = best.get(bi).copied().unwrap_or(f64::INFINITY);
                            let s_v = survivors.get(si).map_or(f64::INFINITY, |t| t.1);
                            if b_v <= s_v {
                                sum += b_v;
                                bi += 1;
                            } else {
                                sum += s_v;
                                si += 1;
                            }
                        }
                        let budget = threshold - sum * (1.0 - 1e-9);
                        if lb > budget {
                            for &(ridx, _) in &survivors[pos..] {
                                resolved[ridx] = true;
                                stats.pruned += 1;
                            }
                            break;
                        }
                        dissimilarities[idx] = self.evaluate_and_seed(
                            window,
                            references,
                            q,
                            candidate_ages[idx],
                            shortlist,
                        )?;
                        resolved[idx] = true;
                        stats.shortlisted += 1;
                        let d = dissimilarities[idx];
                        if d.is_finite() {
                            let at = best.partition_point(|&v| v <= d);
                            if at < keep {
                                best.insert(at, d);
                                best.truncate(keep);
                            }
                        }
                    }
                } else {
                    // No feasible k-solution certified: exhaustive sweep
                    // (rare — degenerate windows).
                    for idx in 0..j {
                        if resolved[idx] {
                            continue;
                        }
                        let age = candidate_ages[idx];
                        if window.slot_recent(target, age)?.state != SlotState::Observed {
                            continue;
                        }
                        dissimilarities[idx] =
                            self.evaluate_and_seed(window, references, q, age, shortlist)?;
                        resolved[idx] = true;
                        stats.shortlisted += 1;
                    }
                }
            }
        }

        let detail = self.select_and_impute(
            window,
            target,
            references,
            now,
            &candidate_ages,
            &dissimilarities,
            timer,
        )?;
        Ok((detail, stats))
    }

    /// Aggregates the anchor values into the imputed value.
    fn aggregate(&self, anchors: &[Anchor]) -> f64 {
        match self.config.aggregation {
            AnchorAggregation::Mean => {
                anchors.iter().map(|a| a.value).sum::<f64>() / anchors.len() as f64
            }
            AnchorAggregation::InverseDistanceWeighted => {
                let mut weight_sum = 0.0;
                let mut value_sum = 0.0;
                for a in anchors {
                    let w = 1.0 / (a.dissimilarity + 1e-9);
                    weight_sum += w;
                    value_sum += w * a.value;
                }
                value_sum / weight_sum
            }
        }
    }

    /// Fallback when no usable anchor exists: the most recent present value
    /// of the target, else the mean of the references' current values, else
    /// the mean of everything present in the window, else 0.
    fn fallback_value(
        &self,
        window: &StreamingWindow,
        target: SeriesId,
        references: &[SeriesId],
    ) -> Result<f64, TsError> {
        let filled = window.ticks_seen().min(window.length());
        for age in 1..filled {
            if let Some(v) = window.value_recent(target, age)? {
                return Ok(v);
            }
        }
        let mut ref_values = Vec::new();
        for &r in references {
            if let Some(v) = window.value_recent(r, 0)? {
                ref_values.push(v);
            }
        }
        if !ref_values.is_empty() {
            return Ok(ref_values.iter().sum::<f64>() / ref_values.len() as f64);
        }
        if let Some(m) = window.buffer(target)?.mean() {
            return Ok(m);
        }
        Ok(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selection::SelectionStrategy;
    use tkcm_timeseries::StreamTick;

    /// Builds a window from chronological per-series values (all series start
    /// at tick 0).
    fn window_with(series: &[Vec<Option<f64>>], capacity: usize) -> StreamingWindow {
        let width = series.len();
        let len = series[0].len();
        let mut w = StreamingWindow::new(width, capacity);
        for t in 0..len {
            let values = series.iter().map(|s| s[t]).collect();
            w.push_tick(&StreamTick::new(Timestamp::new(t as i64), values))
                .unwrap();
        }
        w
    }

    fn small_config(l: usize, k: usize, window: usize) -> TkcmConfig {
        TkcmConfig::builder()
            .window_length(window)
            .pattern_length(l)
            .anchor_count(k)
            .reference_count(2)
            .build()
            .unwrap()
    }

    /// Running example of the paper (Table 2 / Figure 3): s misses 14:20 and
    /// the two most similar patterns are anchored at 14:00 and 13:35, so the
    /// imputed value is (21.9 + 21.8) / 2 = 21.85 °C.
    #[test]
    fn running_example_table_2() {
        let s = vec![
            Some(22.8),
            Some(21.4),
            Some(21.8),
            Some(23.1),
            Some(23.5),
            Some(22.8),
            Some(21.2),
            Some(21.9),
            Some(23.5),
            Some(22.8),
            Some(21.2),
            None,
        ];
        let r1 = vec![
            16.5, 17.2, 17.8, 16.6, 15.8, 16.2, 17.4, 17.7, 15.3, 16.3, 17.1, 17.5,
        ];
        let r2 = vec![
            20.3, 19.8, 18.6, 18.8, 20.0, 20.5, 19.8, 18.2, 20.1, 20.2, 19.9, 18.2,
        ];
        let window = window_with(
            &[
                s,
                r1.into_iter().map(Some).collect(),
                r2.into_iter().map(Some).collect(),
            ],
            12,
        );
        let config = small_config(3, 2, 12);
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1), SeriesId(2)])
            .unwrap();

        assert!(!detail.fallback);
        assert!(detail.complete);
        assert_eq!(detail.anchors.len(), 2);
        // 13:25 is tick 0, so 13:35 is tick 2 and 14:00 is tick 7.
        let anchor_times: Vec<i64> = detail.anchors.iter().map(|a| a.time.tick()).collect();
        assert_eq!(anchor_times, vec![2, 7]);
        assert!(
            (detail.value - 21.85).abs() < 1e-9,
            "value {}",
            detail.value
        );
        // Example 9: epsilon = 0.1 °C.
        assert!((detail.epsilon().unwrap() - 0.1).abs() < 1e-9);
        assert!(detail.consistency().is_consistent());
        assert_eq!(detail.breakdown.imputations, 1);
        assert_eq!(detail.references, vec![SeriesId(1), SeriesId(2)]);
        assert_eq!(detail.time, Timestamp::new(11));
    }

    /// On perfectly periodic sines the imputed value matches the true value
    /// (Lemma 5.3: sine waves are pattern-determining for l > 1).
    #[test]
    fn periodic_sines_are_recovered_exactly() {
        let period = 24usize;
        let len = 24 * 8;
        let s: Vec<Option<f64>> = (0..len)
            .map(|t| {
                if t == len - 1 {
                    None
                } else {
                    Some((t as f64 / period as f64 * std::f64::consts::TAU).sin())
                }
            })
            .collect();
        // Reference shifted by a quarter period -> Pearson ~ 0, but pattern
        // determining for l > 1.
        let r: Vec<Option<f64>> = (0..len)
            .map(|t| Some((((t as f64) - 6.0) / period as f64 * std::f64::consts::TAU).sin()))
            .collect();
        let window = window_with(&[s, r.clone(), r], len);
        let truth = ((len - 1) as f64 / period as f64 * std::f64::consts::TAU).sin();

        let config = small_config(6, 3, len);
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1), SeriesId(2)])
            .unwrap();
        assert!(!detail.fallback);
        assert!(
            (detail.value - truth).abs() < 1e-6,
            "imputed {} vs truth {truth}",
            detail.value
        );
        // Anchors must lie exactly one/two/three periods back.
        for a in &detail.anchors {
            let age = (len as i64 - 1) - a.time.tick();
            assert_eq!(
                age % period as i64,
                0,
                "anchor age {age} not a multiple of the period"
            );
        }
        // epsilon is ~0 for a perfectly periodic signal.
        assert!(detail.epsilon().unwrap() < 1e-9);
    }

    /// With pattern length 1 a phase-shifted reference confuses TKCM
    /// (Section 5.2): the anchor set then mixes up- and down-slopes and the
    /// error is visibly larger than with l > 1.
    #[test]
    fn longer_patterns_help_for_phase_shifted_references() {
        let period = 48usize;
        let len = 48 * 6;
        let truth_at = |t: usize| (t as f64 / period as f64 * std::f64::consts::TAU).sin();
        let s: Vec<Option<f64>> = (0..len)
            .map(|t| {
                if t == len - 1 {
                    None
                } else {
                    Some(truth_at(t))
                }
            })
            .collect();
        let r: Vec<Option<f64>> = (0..len)
            .map(|t| Some((((t as f64) - 12.0) / period as f64 * std::f64::consts::TAU).sin()))
            .collect();
        let window = window_with(&[s, r], len);
        let truth = truth_at(len - 1);

        let err_for = |l: usize| {
            let config = TkcmConfig::builder()
                .window_length(len)
                .pattern_length(l)
                .anchor_count(4)
                .reference_count(1)
                .build()
                .unwrap();
            let imputer = TkcmImputer::new(config).unwrap();
            let detail = imputer
                .impute(&window, SeriesId(0), &[SeriesId(1)])
                .unwrap();
            (detail.value - truth).abs()
        };

        let err_short = err_for(1);
        let err_long = err_for(12);
        assert!(
            err_long < err_short,
            "expected l=12 (err {err_long}) to beat l=1 (err {err_short})"
        );
        assert!(err_long < 0.05, "err_long = {err_long}");
    }

    #[test]
    fn anchors_do_not_overlap_and_exclude_query_pattern() {
        let len = 80usize;
        let vals: Vec<Option<f64>> = (0..len).map(|t| Some(((t % 10) as f64) * 0.1)).collect();
        let window = window_with(&[vals.clone(), vals], len);
        let config = TkcmConfig::builder()
            .window_length(len)
            .pattern_length(5)
            .anchor_count(6)
            .reference_count(1)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1)])
            .unwrap();
        let now = 79i64;
        let mut times: Vec<i64> = detail.anchors.iter().map(|a| a.time.tick()).collect();
        times.sort_unstable();
        for pair in times.windows(2) {
            assert!(pair[1] - pair[0] >= 5, "anchors overlap: {times:?}");
        }
        for t in &times {
            assert!(now - t >= 5, "anchor {t} overlaps the query pattern");
            assert!(now - t <= (len as i64 - 5), "anchor {t} outside window");
        }
    }

    #[test]
    fn missing_target_history_disqualifies_anchors() {
        // The target series is missing everywhere except one historical tick;
        // only that tick can be an anchor.
        let len = 40usize;
        let r: Vec<Option<f64>> = (0..len).map(|t| Some((t as f64 * 0.3).sin())).collect();
        let mut s: Vec<Option<f64>> = vec![None; len];
        s[20] = Some(7.5);
        let window = window_with(&[s, r], len);
        let config = TkcmConfig::builder()
            .window_length(len)
            .pattern_length(3)
            .anchor_count(3)
            .reference_count(1)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1)])
            .unwrap();
        assert!(!detail.fallback);
        assert!(!detail.complete);
        assert_eq!(detail.anchors.len(), 1);
        assert_eq!(detail.anchors[0].time, Timestamp::new(20));
        assert_eq!(detail.value, 7.5);
    }

    #[test]
    fn fallback_when_no_anchor_exists() {
        // Window shorter than 2*l: no candidate anchors at all. The fallback
        // uses the last present value of the target.
        let window = window_with(
            &[
                vec![Some(3.0), Some(4.0), None],
                vec![Some(1.0), Some(1.0), Some(1.0)],
            ],
            16,
        );
        let config = TkcmConfig::builder()
            .window_length(16)
            .pattern_length(2)
            .anchor_count(2)
            .reference_count(1)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1)])
            .unwrap();
        assert!(detail.fallback);
        assert!(detail.anchors.is_empty());
        assert_eq!(detail.value, 4.0);
        assert_eq!(detail.epsilon(), None);
    }

    #[test]
    fn fallback_uses_reference_mean_when_target_has_no_history() {
        let window = window_with(
            &[
                vec![None, None],
                vec![Some(2.0), Some(4.0)],
                vec![Some(4.0), Some(8.0)],
            ],
            16,
        );
        let config = TkcmConfig::builder()
            .window_length(16)
            .pattern_length(2)
            .anchor_count(1)
            .reference_count(2)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1), SeriesId(2)])
            .unwrap();
        assert!(detail.fallback);
        assert_eq!(detail.value, 6.0);
    }

    #[test]
    fn empty_reference_set_is_an_error() {
        let window = window_with(&[vec![Some(1.0)]], 8);
        let config = TkcmConfig::builder()
            .window_length(8)
            .pattern_length(1)
            .anchor_count(1)
            .reference_count(1)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        assert!(imputer.impute(&window, SeriesId(0), &[]).is_err());
        // Empty window is also an error.
        let empty = StreamingWindow::new(1, 8);
        assert!(imputer.impute(&empty, SeriesId(0), &[SeriesId(0)]).is_err());
    }

    #[test]
    fn weighted_aggregation_prefers_closer_patterns() {
        // Construct a window where one historical situation matches the query
        // exactly and another is a poor match with a very different target
        // value; inverse-distance weighting must pull towards the exact match.
        let len = 60usize;
        let mut r: Vec<Option<f64>> = vec![Some(0.0); len];
        let mut s: Vec<Option<f64>> = vec![Some(0.0); len];
        // Exact repetition of the query pattern values [1, 2, 3] at ticks 20..22.
        for (offset, v) in [1.0, 2.0, 3.0].iter().enumerate() {
            r[20 + offset] = Some(*v);
            r[len - 3 + offset] = Some(*v);
        }
        s[22] = Some(10.0);
        // A poor match at ticks 40..42 with a wildly different target value.
        for (offset, v) in [5.0, 5.0, 5.0].iter().enumerate() {
            r[40 + offset] = Some(*v);
        }
        s[42] = Some(-10.0);
        s[len - 1] = None;

        let window = window_with(&[s, r], len);
        let weighted_config = TkcmConfig::builder()
            .window_length(len)
            .pattern_length(3)
            .anchor_count(2)
            .reference_count(1)
            .aggregation(AnchorAggregation::InverseDistanceWeighted)
            .build()
            .unwrap();
        let mean_config = TkcmConfigBuilderClone(weighted_config.clone());

        let weighted = TkcmImputer::new(weighted_config).unwrap();
        let detail_w = weighted
            .impute(&window, SeriesId(0), &[SeriesId(1)])
            .unwrap();
        assert!(
            detail_w.value > 5.0,
            "weighted value {} should be close to 10",
            detail_w.value
        );

        let mut mean_cfg = mean_config.0;
        mean_cfg.aggregation = AnchorAggregation::Mean;
        let mean = TkcmImputer::new(mean_cfg).unwrap();
        let detail_m = mean.impute(&window, SeriesId(0), &[SeriesId(1)]).unwrap();
        assert!(detail_m.value < detail_w.value);
    }

    // Small helper to clone a config through a tuple struct (keeps the test
    // above readable without exposing builder internals).
    struct TkcmConfigBuilderClone(TkcmConfig);

    #[test]
    fn greedy_strategy_is_wired_through_config() {
        let len = 60usize;
        let vals: Vec<Option<f64>> = (0..len).map(|t| Some((t as f64 * 0.37).sin())).collect();
        let window = window_with(&[vals.clone(), vals], len);
        let config = TkcmConfig::builder()
            .window_length(len)
            .pattern_length(4)
            .anchor_count(3)
            .reference_count(1)
            .selection(SelectionStrategy::Greedy)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        assert_eq!(imputer.config().selection, SelectionStrategy::Greedy);
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1)])
            .unwrap();
        assert!(!detail.fallback);
        assert_eq!(imputer.dissimilarity_name(), "L2");
    }

    #[test]
    fn custom_dissimilarity_is_used() {
        let len = 60usize;
        let vals: Vec<Option<f64>> = (0..len).map(|t| Some((t as f64 * 0.37).sin())).collect();
        let window = window_with(&[vals.clone(), vals], len);
        let config = small_config(4, 3, len);
        let imputer =
            TkcmImputer::with_dissimilarity(config, Box::new(crate::dissimilarity::L1Distance))
                .unwrap();
        assert_eq!(imputer.dissimilarity_name(), "L1");
        let detail = imputer
            .impute(&window, SeriesId(0), &[SeriesId(1)])
            .unwrap();
        assert!(!detail.fallback);
        assert!(detail.value.is_finite());
    }
}
