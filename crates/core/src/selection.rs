//! Selection of the k most similar non-overlapping patterns.
//!
//! Definition 3 of the paper asks for a set `A` of `k` anchor points such
//! that (1) every anchored pattern lies inside the window and does not
//! overlap the query pattern, (2) the patterns do not overlap each other
//! (pairwise anchor distance ≥ `l`) and (3) the sum of dissimilarities to the
//! query pattern is minimal.
//!
//! A greedy algorithm that repeatedly picks the most similar pattern that
//! does not overlap the already chosen ones fails to minimise the sum
//! (Section 6.1), so the paper proposes a dynamic program over the matrix
//!
//! ```text
//! M[i][j] = 0                                            if i = 0
//!         = ∞                                            if i > j
//!         = min( M[i][j−1],  D[j] + M[i−1][max(j−l,0)] ) otherwise
//! ```
//!
//! where `D[j]` is the dissimilarity of the `j`-th candidate pattern
//! (Equation 5, Algorithm 1, Figure 8).  This module implements both the DP
//! and the greedy heuristic (for ablation), plus an "overlapping top-k"
//! variant that demonstrates the near-duplicate problem motivating the
//! non-overlap constraint.

/// Which algorithm is used to pick the anchors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// The dynamic program of Section 6 (paper default): minimises the sum of
    /// dissimilarities subject to the non-overlap constraint.
    #[default]
    DynamicProgramming,
    /// Greedy: repeatedly take the most similar pattern that does not overlap
    /// the already selected ones.  May fail to minimise the sum.
    Greedy,
    /// Plain top-k by dissimilarity ignoring the non-overlap constraint.
    /// Only useful to demonstrate the near-duplicate problem.
    OverlappingTopK,
}

/// Result of a pattern-selection run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnchorSelection {
    /// 0-based candidate indices of the selected patterns, in increasing
    /// index order (candidate `j` in the paper is index `j − 1` here).
    pub indices: Vec<usize>,
    /// Sum of the dissimilarities of the selected patterns.
    pub total_dissimilarity: f64,
    /// Whether the requested number of anchors could be selected.
    pub complete: bool,
}

impl AnchorSelection {
    fn empty() -> Self {
        AnchorSelection {
            indices: Vec::new(),
            total_dissimilarity: 0.0,
            complete: false,
        }
    }
}

/// Selects up to `k` non-overlapping candidates minimising the dissimilarity
/// sum using the dynamic program of the paper.
///
/// * `dissimilarities[j]` is `D[j+1]` of the paper: the dissimilarity of the
///   candidate anchored `j` positions after the first valid anchor.
///   Candidates whose dissimilarity is `+∞` (e.g. because the pattern
///   contained missing values) are never selected.
/// * `pattern_length` is `l`; two candidates `i < j` overlap iff `j − i < l`.
///
/// If fewer than `k` non-overlapping finite candidates exist, the selection
/// contains as many as possible and `complete` is `false`.
pub fn select_anchors_dp(
    dissimilarities: &[f64],
    pattern_length: usize,
    k: usize,
) -> AnchorSelection {
    assert!(pattern_length > 0, "pattern length must be positive");
    let j_max = dissimilarities.len();
    if k == 0 || j_max == 0 {
        return AnchorSelection::empty();
    }

    // The largest feasible number of anchors given the candidate count: with
    // J candidates and spacing l the maximum is ceil(J / l).
    let feasible_k = k.min(j_max.div_ceil(pattern_length));

    // M has (k+1) x (J+1) entries; row 0 is all zeros. Column 0 represents
    // "no candidates considered yet".
    let cols = j_max + 1;
    let mut m = vec![vec![0.0_f64; cols]; feasible_k + 1];
    for (i, row) in m.iter_mut().enumerate().skip(1) {
        for (j, cell) in row.iter_mut().enumerate() {
            if i > j {
                *cell = f64::INFINITY;
            }
        }
    }
    for i in 1..=feasible_k {
        for j in 1..=j_max {
            if i > j {
                continue;
            }
            let skip = m[i][j - 1];
            let pred = j.saturating_sub(pattern_length);
            let take = dissimilarities[j - 1] + m[i - 1][pred];
            m[i][j] = skip.min(take);
        }
    }

    // Find the largest i ≤ feasible_k with a finite optimum (infinite D values
    // can make even feasible_k unattainable).
    let mut best_i = 0;
    for i in (1..=feasible_k).rev() {
        if m[i][j_max].is_finite() {
            best_i = i;
            break;
        }
    }
    if best_i == 0 {
        return AnchorSelection::empty();
    }

    // Backtrack (lines 15–23 of Algorithm 1).
    let mut indices = Vec::with_capacity(best_i);
    let mut i = best_i;
    let mut j = j_max;
    while i > 0 && j > 0 {
        if m[i][j] == m[i][j - 1] {
            j -= 1;
        } else {
            indices.push(j - 1);
            i -= 1;
            j = j.saturating_sub(pattern_length);
        }
    }
    indices.reverse();

    AnchorSelection {
        total_dissimilarity: m[best_i][j_max],
        complete: best_i == k,
        indices,
    }
}

/// Greedy selection: repeatedly pick the most similar candidate that does not
/// overlap any already selected one.  Kept for the ablation study — the paper
/// notes this does *not* minimise the dissimilarity sum in general.
pub fn select_anchors_greedy(
    dissimilarities: &[f64],
    pattern_length: usize,
    k: usize,
) -> AnchorSelection {
    assert!(pattern_length > 0, "pattern length must be positive");
    let mut order: Vec<usize> = (0..dissimilarities.len())
        .filter(|&j| dissimilarities[j].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        dissimilarities[a]
            .partial_cmp(&dissimilarities[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut selected: Vec<usize> = Vec::with_capacity(k);
    for j in order {
        if selected.len() == k {
            break;
        }
        if selected.iter().all(|&s| s.abs_diff(j) >= pattern_length) {
            selected.push(j);
        }
    }
    selected.sort_unstable();
    let total = selected.iter().map(|&j| dissimilarities[j]).sum();
    AnchorSelection {
        complete: selected.len() == k,
        total_dissimilarity: total,
        indices: selected,
    }
}

/// Top-k by dissimilarity with no overlap constraint at all.  Demonstrates
/// the near-duplicate problem described in Section 4.1.
pub fn select_anchors_overlapping(dissimilarities: &[f64], k: usize) -> AnchorSelection {
    let mut order: Vec<usize> = (0..dissimilarities.len())
        .filter(|&j| dissimilarities[j].is_finite())
        .collect();
    order.sort_by(|&a, &b| {
        dissimilarities[a]
            .partial_cmp(&dissimilarities[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut selected: Vec<usize> = order.into_iter().take(k).collect();
    selected.sort_unstable();
    let total = selected.iter().map(|&j| dissimilarities[j]).sum();
    AnchorSelection {
        complete: selected.len() == k,
        total_dissimilarity: total,
        indices: selected,
    }
}

/// Dispatches to the strategy chosen in the configuration.
pub fn select_anchors(
    strategy: SelectionStrategy,
    dissimilarities: &[f64],
    pattern_length: usize,
    k: usize,
) -> AnchorSelection {
    match strategy {
        SelectionStrategy::DynamicProgramming => {
            select_anchors_dp(dissimilarities, pattern_length, k)
        }
        SelectionStrategy::Greedy => select_anchors_greedy(dissimilarities, pattern_length, k),
        SelectionStrategy::OverlappingTopK => select_anchors_overlapping(dissimilarities, k),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_8_worked_example() {
        // D = [0.5, 0.3, 2.1, 0.7, 4.0], l = 3, k = 2.
        // The paper's DP selects patterns j = 1 (P(t6), δ=0.5) and j = 4
        // (P(t9), δ=0.7) with total dissimilarity 1.2.
        let d = [0.5, 0.3, 2.1, 0.7, 4.0];
        let sel = select_anchors_dp(&d, 3, 2);
        assert!(sel.complete);
        assert_eq!(sel.indices, vec![0, 3]);
        assert!((sel.total_dissimilarity - 1.2).abs() < 1e-12);
    }

    #[test]
    fn greedy_fails_on_figure_8_example() {
        // Greedy first grabs j = 2 (δ=0.3), which overlaps both neighbours of
        // the optimal solution; its best completion is j = 5 (δ=4.0), total 4.3.
        let d = [0.5, 0.3, 2.1, 0.7, 4.0];
        let greedy = select_anchors_greedy(&d, 3, 2);
        assert!(greedy.complete);
        assert_eq!(greedy.indices, vec![1, 4]);
        assert!(greedy.total_dissimilarity > 4.0);
        // The DP is strictly better.
        let dp = select_anchors_dp(&d, 3, 2);
        assert!(dp.total_dissimilarity < greedy.total_dissimilarity);
    }

    #[test]
    fn dp_never_selects_overlapping_candidates() {
        let d = [1.0, 0.1, 0.2, 0.15, 3.0, 0.05, 0.5];
        for k in 1..=4 {
            let sel = select_anchors_dp(&d, 2, k);
            for w in sel.indices.windows(2) {
                assert!(w[1] - w[0] >= 2, "overlap in {:?}", sel.indices);
            }
        }
    }

    #[test]
    fn dp_matches_brute_force_on_small_inputs() {
        // Exhaustive check of optimality over all non-overlapping subsets.
        fn brute_force(d: &[f64], l: usize, k: usize) -> Option<f64> {
            fn rec(d: &[f64], l: usize, k: usize, start: usize) -> Option<f64> {
                if k == 0 {
                    return Some(0.0);
                }
                let mut best: Option<f64> = None;
                for j in start..d.len() {
                    if !d[j].is_finite() {
                        continue;
                    }
                    if let Some(rest) = rec(d, l, k - 1, j + l) {
                        let total = d[j] + rest;
                        best = Some(best.map_or(total, |b: f64| b.min(total)));
                    }
                }
                best
            }
            rec(d, l, k, 0)
        }

        let cases: Vec<(Vec<f64>, usize, usize)> = vec![
            (vec![0.5, 0.3, 2.1, 0.7, 4.0], 3, 2),
            (vec![1.0, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4], 2, 3),
            (vec![5.0, 1.0, 1.0, 5.0, 1.0, 1.0, 5.0], 3, 2),
            (vec![0.2, 0.1, 0.2, 0.1, 0.2, 0.1], 1, 4),
            (vec![3.0, 2.0, 1.0], 2, 2),
            (vec![1.0, f64::INFINITY, 2.0, 3.0, f64::INFINITY, 0.5], 2, 2),
        ];
        for (d, l, k) in cases {
            let dp = select_anchors_dp(&d, l, k);
            let expected = brute_force(&d, l, k);
            match expected {
                Some(total) if dp.complete => {
                    assert!(
                        (dp.total_dissimilarity - total).abs() < 1e-9,
                        "dp {} vs brute {} for {:?} l={} k={}",
                        dp.total_dissimilarity,
                        total,
                        d,
                        l,
                        k
                    );
                }
                Some(_) => panic!("dp incomplete but brute force found a solution: {d:?}"),
                None => assert!(
                    !dp.complete,
                    "brute force found no solution but dp claims one"
                ),
            }
        }
    }

    #[test]
    fn infeasible_k_returns_partial_selection() {
        // Only 3 candidates with l = 2: at most 2 non-overlapping patterns.
        let d = [1.0, 2.0, 3.0];
        let sel = select_anchors_dp(&d, 2, 5);
        assert!(!sel.complete);
        assert_eq!(sel.indices.len(), 2);
        // Greedy behaves the same way.
        let greedy = select_anchors_greedy(&d, 2, 5);
        assert!(!greedy.complete);
        assert_eq!(greedy.indices.len(), 2);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(select_anchors_dp(&[], 3, 2), AnchorSelection::empty());
        assert_eq!(
            select_anchors_dp(&[1.0, 2.0], 3, 0),
            AnchorSelection::empty()
        );
        let all_inf = [f64::INFINITY, f64::INFINITY];
        assert!(select_anchors_dp(&all_inf, 1, 1).indices.is_empty());
        assert!(select_anchors_greedy(&all_inf, 1, 1).indices.is_empty());
        assert!(select_anchors_overlapping(&all_inf, 1).indices.is_empty());
    }

    #[test]
    fn k_equals_one_picks_the_minimum() {
        let d = [0.9, 0.4, 0.6, 0.2, 0.8];
        let sel = select_anchors_dp(&d, 4, 1);
        assert_eq!(sel.indices, vec![3]);
        assert!((sel.total_dissimilarity - 0.2).abs() < 1e-12);
    }

    #[test]
    fn infinite_candidates_are_skipped() {
        let d = [f64::INFINITY, 0.5, f64::INFINITY, 0.7, f64::INFINITY];
        let sel = select_anchors_dp(&d, 2, 2);
        assert!(sel.complete);
        assert_eq!(sel.indices, vec![1, 3]);
        assert!((sel.total_dissimilarity - 1.2).abs() < 1e-12);
    }

    #[test]
    fn overlapping_topk_demonstrates_near_duplicates() {
        // A smooth dissimilarity profile with a single minimum at index 5:
        // without the overlap constraint the top-3 are 4, 5, 6 — adjacent
        // near-duplicates, exactly the problem described in Section 4.1.
        let d: Vec<f64> = (0..11).map(|j| ((j as f64) - 5.0).abs()).collect();
        let overlapping = select_anchors_overlapping(&d, 3);
        assert_eq!(overlapping.indices, vec![4, 5, 6]);
        let dp = select_anchors_dp(&d, 3, 3);
        for w in dp.indices.windows(2) {
            assert!(w[1] - w[0] >= 3);
        }
    }

    #[test]
    fn strategy_dispatch() {
        let d = [0.5, 0.3, 2.1, 0.7, 4.0];
        let dp = select_anchors(SelectionStrategy::DynamicProgramming, &d, 3, 2);
        let greedy = select_anchors(SelectionStrategy::Greedy, &d, 3, 2);
        let overl = select_anchors(SelectionStrategy::OverlappingTopK, &d, 3, 2);
        assert_eq!(dp.indices, vec![0, 3]);
        assert_eq!(greedy.indices, vec![1, 4]);
        // Without the overlap constraint the two smallest dissimilarities win
        // (indices 1 and 0), even though they are adjacent.
        assert_eq!(overl.indices, vec![0, 1]);
    }

    #[test]
    fn ties_are_resolved_deterministically() {
        let d = [1.0, 1.0, 1.0, 1.0];
        let a = select_anchors_dp(&d, 2, 2);
        let b = select_anchors_dp(&d, 2, 2);
        assert_eq!(a, b);
        assert!(a.complete);
        assert!((a.total_dissimilarity - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_pattern_length_panics() {
        let _ = select_anchors_dp(&[1.0], 0, 1);
    }
}
