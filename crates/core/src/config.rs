//! TKCM configuration: the parameters `d`, `k`, `l` and `L` of the paper.
//!
//! Defaults follow the calibration of Section 7.2: `d = 3` reference series,
//! `k = 5` anchor points, pattern length `l = 72` and a streaming window of
//! one year of 5-minute samples (`L = 105 120`).  For unit tests and small
//! synthetic datasets smaller values are used, so every parameter is
//! validated explicitly.

use std::fmt;

use tkcm_timeseries::TsError;

use crate::selection::SelectionStrategy;

/// Aggregation applied to the values of the incomplete series at the `k`
/// anchor points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AnchorAggregation {
    /// Plain average (Definition 4 of the paper).
    #[default]
    Mean,
    /// Average weighted by inverse pattern dissimilarity
    /// (Troyanskaya-style weighting, provided as an extension/ablation).
    InverseDistanceWeighted,
}

/// Configuration of the TKCM imputation algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct TkcmConfig {
    /// Streaming window length `L` (number of ticks kept in memory).
    pub window_length: usize,
    /// Pattern length `l` (> 0).
    pub pattern_length: usize,
    /// Number of anchor points `k` (> 0).
    pub anchor_count: usize,
    /// Number of reference series `d` (> 0).
    pub reference_count: usize,
    /// How the anchor values are aggregated into the imputed value.
    pub aggregation: AnchorAggregation,
    /// Pattern-selection strategy (dynamic programming per the paper, or the
    /// greedy heuristic the paper argues against — kept for ablation).
    pub selection: SelectionStrategy,
    /// Whether candidate patterns may use slots that are themselves missing.
    /// When `false` (default) a candidate pattern containing a missing
    /// reference value is skipped entirely.
    pub allow_missing_in_patterns: bool,
    /// Whether the streaming engine maintains the dissimilarity array `D`
    /// incrementally per tick (Section 6.2) instead of recomputing it from
    /// scratch at every imputation.  `true` (default) is the paper's
    /// streaming algorithm; `false` keeps the exact `O(L·l·d)`-per-imputation
    /// recompute path for cross-checking.  The flag only affects the engine
    /// tick path: direct `TkcmImputer::impute` calls always recompute, and
    /// non-decomposable dissimilarity measures (DTW) fall back to exact
    /// recomputation regardless of the flag.
    pub incremental: bool,
    /// Whether the streaming engine prunes the candidate space through the
    /// block-quantized signature index ([`crate::signature`]) before exact
    /// dissimilarity evaluation.  `true` (default) keeps the engine's output
    /// bit-identical to the exhaustive path (the bound is admissible) while
    /// skipping most exact evaluations; `false` is the explicit opt-out that
    /// restores the PR-2 incremental (or exact) path unchanged.  Pruning
    /// requires dynamic-programming selection and an incrementally
    /// decomposable dissimilarity (L2); other configurations ignore the flag.
    pub pruning: bool,
}

impl TkcmConfig {
    /// Paper defaults for the SBR-scale datasets: `d = 3`, `k = 5`, `l = 72`,
    /// `L = 105 120` (one year of 5-minute samples).
    pub fn paper_defaults() -> Self {
        TkcmConfig {
            window_length: 105_120,
            pattern_length: 72,
            anchor_count: 5,
            reference_count: 3,
            aggregation: AnchorAggregation::Mean,
            selection: SelectionStrategy::DynamicProgramming,
            allow_missing_in_patterns: false,
            incremental: true,
            pruning: true,
        }
    }

    /// Starts building a configuration.
    pub fn builder() -> TkcmConfigBuilder {
        TkcmConfigBuilder::default()
    }

    /// Validates the mutual constraints between the parameters.
    ///
    /// Definition 3 requires anchors in `[t_{n-L+l}, t_{n-l}]` with pairwise
    /// distance at least `l`; for `k` anchors to exist at all the window must
    /// satisfy `L ≥ (k + 1) * l`, i.e. hold the query pattern plus `k`
    /// non-overlapping candidate patterns.
    pub fn validate(&self) -> Result<(), TsError> {
        if self.pattern_length == 0 {
            return Err(TsError::invalid("l", "pattern length must be positive"));
        }
        if self.anchor_count == 0 {
            return Err(TsError::invalid("k", "anchor count must be positive"));
        }
        if self.reference_count == 0 {
            return Err(TsError::invalid("d", "reference count must be positive"));
        }
        if self.window_length == 0 {
            return Err(TsError::invalid("L", "window length must be positive"));
        }
        // Checked arithmetic: configurations can come from decoded snapshot
        // bytes, so (k+1)*l overflowing must reject, not wrap.
        let needed = self
            .anchor_count
            .checked_add(1)
            .and_then(|k| k.checked_mul(self.pattern_length));
        if needed.is_none_or(|needed| self.window_length < needed) {
            return Err(TsError::invalid(
                "L",
                format!(
                    "window length {} too small: need at least (k+1)*l = {} to fit the query \
                     pattern and {} non-overlapping candidate patterns of length {}",
                    self.window_length,
                    needed.map_or_else(|| "overflow".to_string(), |n| n.to_string()),
                    self.anchor_count,
                    self.pattern_length
                ),
            ));
        }
        Ok(())
    }

    /// Number of candidate anchor points in a full window:
    /// `L − 2l + 1` (Section 6.1 — the first `l−1` and last `l` ticks are
    /// excluded).
    pub fn candidate_count(&self) -> usize {
        self.window_length.saturating_sub(2 * self.pattern_length) + 1
    }
}

impl Default for TkcmConfig {
    fn default() -> Self {
        TkcmConfig {
            window_length: 1024,
            pattern_length: 12,
            anchor_count: 5,
            reference_count: 3,
            aggregation: AnchorAggregation::Mean,
            selection: SelectionStrategy::DynamicProgramming,
            allow_missing_in_patterns: false,
            incremental: true,
            pruning: true,
        }
    }
}

impl fmt::Display for TkcmConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TKCM(L={}, l={}, k={}, d={}, {:?}, {:?}, {}, {})",
            self.window_length,
            self.pattern_length,
            self.anchor_count,
            self.reference_count,
            self.selection,
            self.aggregation,
            if self.incremental {
                "incremental-D"
            } else {
                "exact-D"
            },
            if self.pruning { "pruned" } else { "exhaustive" }
        )
    }
}

/// Builder for [`TkcmConfig`].
#[derive(Clone, Debug, Default)]
pub struct TkcmConfigBuilder {
    config: Option<TkcmConfig>,
    window_length: Option<usize>,
    pattern_length: Option<usize>,
    anchor_count: Option<usize>,
    reference_count: Option<usize>,
    aggregation: Option<AnchorAggregation>,
    selection: Option<SelectionStrategy>,
    allow_missing_in_patterns: Option<bool>,
    incremental: Option<bool>,
    pruning: Option<bool>,
}

impl TkcmConfigBuilder {
    /// Starts from an existing configuration instead of the defaults.
    pub fn from_config(config: TkcmConfig) -> Self {
        TkcmConfigBuilder {
            config: Some(config),
            ..Default::default()
        }
    }

    /// Sets the streaming window length `L`.
    pub fn window_length(mut self, value: usize) -> Self {
        self.window_length = Some(value);
        self
    }

    /// Sets the pattern length `l`.
    pub fn pattern_length(mut self, value: usize) -> Self {
        self.pattern_length = Some(value);
        self
    }

    /// Sets the number of anchor points `k`.
    pub fn anchor_count(mut self, value: usize) -> Self {
        self.anchor_count = Some(value);
        self
    }

    /// Sets the number of reference series `d`.
    pub fn reference_count(mut self, value: usize) -> Self {
        self.reference_count = Some(value);
        self
    }

    /// Sets the anchor aggregation rule.
    pub fn aggregation(mut self, value: AnchorAggregation) -> Self {
        self.aggregation = Some(value);
        self
    }

    /// Sets the pattern-selection strategy.
    pub fn selection(mut self, value: SelectionStrategy) -> Self {
        self.selection = Some(value);
        self
    }

    /// Allows candidate patterns that contain missing reference values.
    pub fn allow_missing_in_patterns(mut self, value: bool) -> Self {
        self.allow_missing_in_patterns = Some(value);
        self
    }

    /// Selects between the Section 6.2 incremental `D` maintenance (`true`,
    /// default) and the exact recompute-all path (`false`).
    pub fn incremental(mut self, value: bool) -> Self {
        self.incremental = Some(value);
        self
    }

    /// Enables (`true`, default) or disables (`false`) signature-index
    /// candidate pruning on the engine tick path.
    pub fn pruning(mut self, value: bool) -> Self {
        self.pruning = Some(value);
        self
    }

    /// Finalises and validates the configuration.
    pub fn build(self) -> Result<TkcmConfig, TsError> {
        let mut config = self.config.unwrap_or_default();
        if let Some(v) = self.window_length {
            config.window_length = v;
        }
        if let Some(v) = self.pattern_length {
            config.pattern_length = v;
        }
        if let Some(v) = self.anchor_count {
            config.anchor_count = v;
        }
        if let Some(v) = self.reference_count {
            config.reference_count = v;
        }
        if let Some(v) = self.aggregation {
            config.aggregation = v;
        }
        if let Some(v) = self.selection {
            config.selection = v;
        }
        if let Some(v) = self.allow_missing_in_patterns {
            config.allow_missing_in_patterns = v;
        }
        if let Some(v) = self.incremental {
            config.incremental = v;
        }
        if let Some(v) = self.pruning {
            config.pruning = v;
        }
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_7_2() {
        let c = TkcmConfig::paper_defaults();
        assert_eq!(c.reference_count, 3);
        assert_eq!(c.anchor_count, 5);
        assert_eq!(c.pattern_length, 72);
        assert_eq!(c.window_length, 105_120);
        assert_eq!(c.selection, SelectionStrategy::DynamicProgramming);
        assert_eq!(c.aggregation, AnchorAggregation::Mean);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides_individual_fields() {
        let c = TkcmConfig::builder()
            .window_length(200)
            .pattern_length(4)
            .anchor_count(3)
            .reference_count(2)
            .aggregation(AnchorAggregation::InverseDistanceWeighted)
            .selection(SelectionStrategy::Greedy)
            .allow_missing_in_patterns(true)
            .build()
            .unwrap();
        assert_eq!(c.window_length, 200);
        assert_eq!(c.pattern_length, 4);
        assert_eq!(c.anchor_count, 3);
        assert_eq!(c.reference_count, 2);
        assert_eq!(c.aggregation, AnchorAggregation::InverseDistanceWeighted);
        assert_eq!(c.selection, SelectionStrategy::Greedy);
        assert!(c.allow_missing_in_patterns);
    }

    #[test]
    fn builder_from_config_preserves_unset_fields() {
        let base = TkcmConfig::paper_defaults();
        let c = TkcmConfigBuilder::from_config(base.clone())
            .pattern_length(36)
            .build()
            .unwrap();
        assert_eq!(c.pattern_length, 36);
        assert_eq!(c.window_length, base.window_length);
        assert_eq!(c.anchor_count, base.anchor_count);
    }

    #[test]
    fn zero_parameters_are_rejected() {
        assert!(TkcmConfig::builder().pattern_length(0).build().is_err());
        assert!(TkcmConfig::builder().anchor_count(0).build().is_err());
        assert!(TkcmConfig::builder().reference_count(0).build().is_err());
        assert!(TkcmConfig::builder().window_length(0).build().is_err());
    }

    #[test]
    fn window_must_hold_query_plus_k_patterns() {
        // l = 10, k = 3 -> need L >= 40
        let short = TkcmConfig::builder()
            .window_length(39)
            .pattern_length(10)
            .anchor_count(3)
            .build();
        assert!(short.is_err());
        let ok = TkcmConfig::builder()
            .window_length(40)
            .pattern_length(10)
            .anchor_count(3)
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn candidate_count_matches_paper_formula() {
        let c = TkcmConfig::builder()
            .window_length(10)
            .pattern_length(3)
            .anchor_count(2)
            .build()
            .unwrap();
        // Figure 8: L = 10, l = 3 -> 5 candidate patterns (indices 1..=5).
        assert_eq!(c.candidate_count(), 5);
    }

    #[test]
    fn pruning_defaults_on_with_explicit_opt_out() {
        assert!(TkcmConfig::default().pruning);
        assert!(TkcmConfig::paper_defaults().pruning);
        let c = TkcmConfig::builder().pruning(false).build().unwrap();
        assert!(!c.pruning);
        assert!(c.to_string().contains("exhaustive"));
        assert!(TkcmConfig::default().to_string().contains("pruned"));
    }

    #[test]
    fn display_is_informative() {
        let c = TkcmConfig::default();
        let s = c.to_string();
        assert!(s.contains("l=12"));
        assert!(s.contains("k=5"));
    }
}
