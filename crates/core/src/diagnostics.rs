//! Phase timing diagnostics.
//!
//! Section 7.4 of the paper breaks TKCM's runtime into the pattern-extraction
//! (PE) phase — fetching window data and computing dissimilarities — and the
//! pattern-selection (PS) phase — the dynamic program.  With the default
//! parameters PE accounts for ~92 % of the runtime; raising `k` to 300 pushes
//! PS to ~25 %.  [`PhaseTimer`] collects the same breakdown for our
//! implementation so the experiment harness can reproduce that analysis.
//!
//! Every closed phase span is additionally *recorded* (never read back —
//! the `obs-read-only` policy) into the process-global `tkcm-obs` metrics
//! registry as `tkcm_core_phase_nanos_total{phase=…}`, so fleet-wide phase
//! totals survive even when an individual breakdown is discarded.

use std::sync::LazyLock;
use std::time::{Duration, Instant};

/// Per-phase nano counters in the global metrics registry, in [`Phase`]
/// declaration order.
static PHASE_NANOS: LazyLock<[tkcm_obs::Counter; 4]> = LazyLock::new(|| {
    ["extraction", "selection", "imputation", "maintenance"].map(|phase| {
        tkcm_obs::registry().counter("tkcm_core_phase_nanos_total", &[("phase", phase)])
    })
});

/// Total imputations timed, fleet-wide.
static IMPUTATIONS: LazyLock<tkcm_obs::Counter> =
    LazyLock::new(|| tkcm_obs::registry().counter("tkcm_core_imputations_total", &[]));

/// Records `elapsed` in `phase`'s global nano counter (record-only).
pub(crate) fn record_phase_nanos(phase: Phase, elapsed: Duration) {
    let index = match phase {
        Phase::Extraction => 0,
        Phase::Selection => 1,
        Phase::Imputation => 2,
        Phase::Maintenance => 3,
    };
    PHASE_NANOS[index].add(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

/// Accumulated wall-clock time per TKCM phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Pattern extraction: reading the window and computing dissimilarities.
    pub extraction: Duration,
    /// Pattern selection: the dynamic program (or greedy) over `D`.
    pub selection: Duration,
    /// Value imputation: averaging the anchor values and writing back.
    pub imputation: Duration,
    /// Incremental `D[j]` maintenance (Section 6.2): the per-tick sliding
    /// aggregate updates, state rebuilds and write-back invalidation.  Zero
    /// on the exact-recompute path, where that work is part of extraction.
    pub maintenance: Duration,
    /// Number of imputations the breakdown was accumulated over.
    pub imputations: usize,
}

impl PhaseBreakdown {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.extraction + self.selection + self.imputation + self.maintenance
    }

    /// Fraction of the total spent in pattern extraction (0 when no time was
    /// recorded at all).
    pub fn extraction_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.extraction.as_secs_f64() / total
        }
    }

    /// Fraction of the total spent in pattern selection.
    pub fn selection_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.selection.as_secs_f64() / total
        }
    }

    /// Fraction of the total spent maintaining the incremental `D[j]` state.
    pub fn maintenance_share(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.maintenance.as_secs_f64() / total
        }
    }

    /// This breakdown with every wall-clock field zeroed but the imputation
    /// count kept: the canonical shape for equality assertions between two
    /// runs whose timings legitimately differ (threaded vs sequential,
    /// before vs after recovery).  Use via
    /// [`crate::EngineOutcome::timing_stripped`] rather than re-implementing
    /// the stripping in each test suite.
    pub fn zeroed_for_compare(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            imputations: self.imputations,
            ..PhaseBreakdown::default()
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.extraction += other.extraction;
        self.selection += other.selection;
        self.imputation += other.imputation;
        self.maintenance += other.maintenance;
        self.imputations += other.imputations;
    }
}

/// Stopwatch that attributes elapsed time to the TKCM phases.
///
/// Dropping a timer mid-phase closes the open span first (see
/// [`PhaseTimer::stop`]): a panic between `start` and `stop` used to
/// silently discard the in-flight time, which made crash-path phase totals
/// in the metrics registry under-count exactly the interesting runs.
#[derive(Debug)]
pub struct PhaseTimer {
    breakdown: PhaseBreakdown,
    started: Option<(Phase, Instant)>,
}

/// The three phases of Algorithm 1, plus the Section 6.2 per-tick
/// maintenance of the incremental dissimilarity state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Pattern extraction (step 1).
    Extraction,
    /// Pattern selection (step 2).
    Selection,
    /// Value imputation (step 3).
    Imputation,
    /// Incremental `D[j]` maintenance (Section 6.2; engine tick path only).
    Maintenance,
}

impl PhaseTimer {
    /// Creates an idle timer with an empty breakdown.
    pub fn new() -> Self {
        PhaseTimer {
            breakdown: PhaseBreakdown::default(),
            started: None,
        }
    }

    /// Starts (or switches to) a phase, closing the previously running one.
    pub fn start(&mut self, phase: Phase) {
        self.stop();
        self.started = Some((phase, Instant::now()));
    }

    /// Stops the currently running phase, attributing its elapsed time to
    /// the breakdown and to the global per-phase metrics counter.
    pub fn stop(&mut self) {
        if let Some((phase, at)) = self.started.take() {
            let elapsed = at.elapsed();
            match phase {
                Phase::Extraction => self.breakdown.extraction += elapsed,
                Phase::Selection => self.breakdown.selection += elapsed,
                Phase::Imputation => self.breakdown.imputation += elapsed,
                Phase::Maintenance => self.breakdown.maintenance += elapsed,
            }
            record_phase_nanos(phase, elapsed);
        }
    }

    /// Marks that one complete imputation has been timed.
    pub fn finish_imputation(&mut self) {
        self.stop();
        self.breakdown.imputations += 1;
        IMPUTATIONS.inc();
    }

    /// The breakdown accumulated so far.
    pub fn breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }
}

impl Default for PhaseTimer {
    fn default() -> Self {
        PhaseTimer::new()
    }
}

impl Drop for PhaseTimer {
    /// Closes a span left open by an early return or a panic, so its
    /// in-flight time still reaches the metrics registry instead of being
    /// silently discarded with the timer.
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_attributes_time_to_phases() {
        let mut timer = PhaseTimer::new();
        timer.start(Phase::Extraction);
        std::thread::sleep(Duration::from_millis(2));
        timer.start(Phase::Selection);
        std::thread::sleep(Duration::from_millis(1));
        timer.start(Phase::Imputation);
        timer.finish_imputation();

        let b = timer.breakdown();
        assert!(b.extraction > Duration::ZERO);
        assert!(b.selection > Duration::ZERO);
        assert_eq!(b.imputations, 1);
        assert!(b.total() >= b.extraction + b.selection);
        let shares = b.extraction_share() + b.selection_share();
        assert!(shares <= 1.0 + 1e-9);
        assert!(b.extraction_share() > 0.0);
    }

    #[test]
    fn empty_breakdown_has_zero_shares() {
        let b = PhaseBreakdown::default();
        assert_eq!(b.total(), Duration::ZERO);
        assert_eq!(b.extraction_share(), 0.0);
        assert_eq!(b.selection_share(), 0.0);
        assert_eq!(b.maintenance_share(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let a = PhaseBreakdown {
            extraction: Duration::from_millis(10),
            selection: Duration::from_millis(5),
            imputation: Duration::from_millis(1),
            maintenance: Duration::from_millis(4),
            imputations: 2,
        };
        let mut b = PhaseBreakdown {
            extraction: Duration::from_millis(1),
            selection: Duration::from_millis(1),
            imputation: Duration::from_millis(1),
            maintenance: Duration::from_millis(1),
            imputations: 1,
        };
        b.merge(&a);
        assert_eq!(b.extraction, Duration::from_millis(11));
        assert_eq!(b.selection, Duration::from_millis(6));
        assert_eq!(b.maintenance, Duration::from_millis(5));
        assert_eq!(b.imputations, 3);
        assert!((b.maintenance_share() - 5.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn stop_without_start_is_a_noop() {
        let mut timer = PhaseTimer::default();
        timer.stop();
        assert_eq!(timer.breakdown(), PhaseBreakdown::default());
    }

    /// The global counter only ever grows, so "grew by at least my own
    /// sleep" holds even with other tests recording concurrently.
    fn selection_nanos() -> u64 {
        match tkcm_obs::registry()
            .snapshot()
            .into_iter()
            .find(|m| {
                m.name == "tkcm_core_phase_nanos_total"
                    && m.labels == vec![("phase", "selection".to_string())]
            })
            .map(|m| m.value)
        {
            Some(tkcm_obs::metrics::SnapshotValue::Counter(v)) => v,
            _ => 0,
        }
    }

    #[test]
    fn dropping_a_timer_mid_phase_closes_the_open_span() {
        let before = selection_nanos();
        {
            let mut timer = PhaseTimer::new();
            timer.start(Phase::Selection);
            std::thread::sleep(Duration::from_millis(2));
            // Dropped mid-phase: no stop(), as on a panic path.
        }
        let after = selection_nanos();
        assert!(
            after >= before + 1_000_000,
            "Drop must attribute the in-flight span: before {before}, after {after}"
        );
    }

    #[test]
    fn a_panic_between_start_and_stop_still_records_the_span() {
        let before = selection_nanos();
        let outcome = std::panic::catch_unwind(|| {
            let mut timer = PhaseTimer::new();
            timer.start(Phase::Selection);
            std::thread::sleep(Duration::from_millis(2));
            panic!("simulated mid-phase failure");
        });
        assert!(outcome.is_err());
        let after = selection_nanos();
        assert!(
            after >= before + 1_000_000,
            "unwinding must close the span: before {before}, after {after}"
        );
    }
}
