//! Pattern dissimilarity measures (Definition 2).
//!
//! The paper defines the dissimilarity δ between two patterns as the L2
//! (Frobenius) distance over all `d × l` entries, and lists the L1 norm and
//! Dynamic Time Warping as interesting alternatives for future work
//! (Section 8).  All three are provided behind the [`Dissimilarity`] trait so
//! the imputer and the ablation benchmarks can swap them freely.
//!
//! When a pattern contains missing slots (only possible when the
//! configuration allows it) the affected coordinate pairs are skipped and the
//! result is rescaled by `total/observed` so that patterns with different
//! numbers of missing slots remain comparable.

use crate::pattern::Pattern;

/// A dissimilarity measure between two patterns of identical shape.
pub trait Dissimilarity: Send + Sync {
    /// Human-readable name of the measure (used in reports).
    fn name(&self) -> &'static str;

    /// Dissimilarity between two patterns.
    ///
    /// # Panics
    /// Panics if the two patterns do not have the same shape.
    fn distance(&self, a: &Pattern, b: &Pattern) -> f64;

    /// Whether [`crate::incremental::IncrementalDissimilarity`] can maintain
    /// this measure as a sliding aggregate (Section 6.2).  Only the paper's
    /// L2 measure decomposes into per-column contributions; DTW's warping
    /// path and any other non-separable measure must keep the exact
    /// recompute-all path.
    fn supports_incremental(&self) -> bool {
        false
    }
}

fn check_shapes(a: &Pattern, b: &Pattern) {
    assert_eq!(a.rows(), b.rows(), "dissimilarity: row count mismatch");
    assert_eq!(a.length(), b.length(), "dissimilarity: length mismatch");
}

/// Collects the pairs of values that are observed in both patterns.
fn observed_pairs(a: &Pattern, b: &Pattern) -> (Vec<(f64, f64)>, usize) {
    let total = a.values().len();
    let pairs = a
        .values()
        .iter()
        .zip(b.values().iter())
        .filter_map(|(x, y)| match (x, y) {
            (Some(x), Some(y)) => Some((*x, *y)),
            _ => None,
        })
        .collect();
    (pairs, total)
}

/// The components of the (rescaled) L2 distance: the sum of squared
/// differences over the pairs observed in both patterns, and the number of
/// such pairs.  This is the running aggregate that
/// [`crate::incremental::IncrementalDissimilarity`] maintains per candidate
/// offset; [`l2_from_components`] folds it into the distance of Definition 2.
pub fn l2_components(a: &Pattern, b: &Pattern) -> (f64, usize) {
    check_shapes(a, b);
    let mut sum_sq = 0.0;
    let mut observed = 0usize;
    for (x, y) in a.values().iter().zip(b.values().iter()) {
        if let (Some(x), Some(y)) = (x, y) {
            sum_sq += (x - y) * (x - y);
            observed += 1;
        }
    }
    (sum_sq, observed)
}

/// Folds [`l2_components`] into the L2 distance of Definition 2: missing
/// pairs are skipped and the result rescaled by `total/observed` so patterns
/// with different numbers of missing slots stay comparable.  No observed
/// pair at all yields `+∞` so the candidate is never selected.
pub fn l2_from_components(sum_sq: f64, observed: usize, total: usize) -> f64 {
    if observed == 0 {
        return f64::INFINITY;
    }
    // Clamp tiny negative values that incremental add/subtract can leave.
    let scale = total as f64 / observed as f64;
    (sum_sq.max(0.0) * scale).sqrt()
}

/// The Euclidean / Frobenius distance of Definition 2 — the measure used by
/// the paper everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L2Distance;

impl Dissimilarity for L2Distance {
    fn name(&self) -> &'static str {
        "L2"
    }

    fn distance(&self, a: &Pattern, b: &Pattern) -> f64 {
        let (sum_sq, observed) = l2_components(a, b);
        l2_from_components(sum_sq, observed, a.values().len())
    }

    fn supports_incremental(&self) -> bool {
        true
    }
}

/// The Manhattan (L1) distance, listed as future work in Section 8.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct L1Distance;

impl Dissimilarity for L1Distance {
    fn name(&self) -> &'static str {
        "L1"
    }

    fn distance(&self, a: &Pattern, b: &Pattern) -> f64 {
        check_shapes(a, b);
        let (pairs, total) = observed_pairs(a, b);
        if pairs.is_empty() {
            return f64::INFINITY;
        }
        let sum: f64 = pairs.iter().map(|(x, y)| (x - y).abs()).sum();
        sum * total as f64 / pairs.len() as f64
    }
}

/// Dynamic Time Warping distance, applied per reference row and summed.
///
/// The paper suggests DTW as a way of aligning shifted patterns (Section 8).
/// A Sakoe–Chiba band of `band` columns restricts the warping path; with
/// `band = 0` DTW degenerates to the (squared) L2 distance of the row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DtwDistance {
    /// Sakoe–Chiba band width (maximum column offset of the warping path).
    pub band: usize,
}

impl DtwDistance {
    /// Creates a DTW measure with the given Sakoe–Chiba band.
    pub fn new(band: usize) -> Self {
        DtwDistance { band }
    }

    fn dtw_row(&self, a: &[Option<f64>], b: &[Option<f64>]) -> f64 {
        let n = a.len();
        if n == 0 {
            return 0.0;
        }
        // Fill missing values with the row mean so DTW stays well defined.
        let mean_of = |row: &[Option<f64>]| {
            let obs: Vec<f64> = row.iter().flatten().copied().collect();
            if obs.is_empty() {
                0.0
            } else {
                obs.iter().sum::<f64>() / obs.len() as f64
            }
        };
        let ma = mean_of(a);
        let mb = mean_of(b);
        let av: Vec<f64> = a.iter().map(|v| v.unwrap_or(ma)).collect();
        let bv: Vec<f64> = b.iter().map(|v| v.unwrap_or(mb)).collect();

        let inf = f64::INFINITY;
        let mut dp = vec![vec![inf; n + 1]; n + 1];
        dp[0][0] = 0.0;
        for i in 1..=n {
            let lo = i.saturating_sub(self.band).max(1);
            let hi = (i + self.band).min(n);
            for j in lo..=hi {
                let cost = (av[i - 1] - bv[j - 1]).powi(2);
                let best = dp[i - 1][j].min(dp[i][j - 1]).min(dp[i - 1][j - 1]);
                if best.is_finite() {
                    dp[i][j] = cost + best;
                }
            }
        }
        dp[n][n].sqrt()
    }
}

impl Default for DtwDistance {
    fn default() -> Self {
        DtwDistance { band: 4 }
    }
}

impl Dissimilarity for DtwDistance {
    fn name(&self) -> &'static str {
        "DTW"
    }

    fn distance(&self, a: &Pattern, b: &Pattern) -> f64 {
        check_shapes(a, b);
        (0..a.rows())
            .map(|r| self.dtw_row(a.row(r), b.row(r)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkcm_timeseries::Timestamp;

    fn pattern(rows: &[Vec<f64>]) -> Pattern {
        Pattern::from_rows(Timestamp::new(0), rows)
    }

    #[test]
    fn l2_matches_example_3_of_the_paper() {
        // Example 3 computes δ(P(14:00), P(14:20)) from the Table 2 values.
        // The exact sum of squared differences is 0.24, so δ = sqrt(0.24) ≈
        // 0.49 (the paper's example text rounds the intermediate terms and
        // prints 0.43).
        let p_1400 = pattern(&[vec![16.2, 17.4, 17.7], vec![20.5, 19.8, 18.2]]);
        let p_1420 = pattern(&[vec![16.3, 17.1, 17.5], vec![20.2, 19.9, 18.2]]);
        let d = L2Distance.distance(&p_1400, &p_1420);
        assert!((d - 0.24f64.sqrt()).abs() < 1e-9, "d = {d}");
        // Symmetry and identity.
        assert_eq!(d, L2Distance.distance(&p_1420, &p_1400));
        assert_eq!(L2Distance.distance(&p_1420, &p_1420), 0.0);
    }

    #[test]
    fn l2_is_monotone_in_pattern_length() {
        // Lemma 5.1: extending both patterns by one more column can only
        // increase (or keep) the distance.
        let short_a = pattern(&[vec![1.0, 2.0]]);
        let short_b = pattern(&[vec![1.5, 2.5]]);
        let long_a = pattern(&[vec![0.0, 1.0, 2.0]]);
        let long_b = pattern(&[vec![9.0, 1.5, 2.5]]);
        let d_short = L2Distance.distance(&short_a, &short_b);
        let d_long = L2Distance.distance(&long_a, &long_b);
        assert!(d_long >= d_short);
    }

    #[test]
    fn l1_distance_basic_properties() {
        let a = pattern(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = pattern(&[vec![2.0, 2.0], vec![3.0, 2.0]]);
        assert_eq!(L1Distance.distance(&a, &b), 3.0);
        assert_eq!(L1Distance.distance(&a, &a), 0.0);
        assert_eq!(L1Distance.name(), "L1");
        assert_eq!(L2Distance.name(), "L2");
    }

    #[test]
    fn missing_slots_are_skipped_and_rescaled() {
        let full_a = pattern(&[vec![1.0, 2.0, 3.0, 4.0]]);
        let full_b = pattern(&[vec![2.0, 3.0, 4.0, 5.0]]);
        let d_full = L2Distance.distance(&full_a, &full_b);

        // Same patterns but with one pair unobserved: the rescaling keeps the
        // distance identical because every pair contributes equally here.
        let part_a = Pattern::new(
            Timestamp::new(0),
            1,
            4,
            vec![Some(1.0), None, Some(3.0), Some(4.0)],
        );
        let part_b = pattern(&[vec![2.0, 3.0, 4.0, 5.0]]);
        let d_part = L2Distance.distance(&part_a, &part_b);
        assert!((d_full - d_part).abs() < 1e-12);

        // All-missing pattern: infinite distance so it is never selected.
        let empty_a = Pattern::new(Timestamp::new(0), 1, 2, vec![None, None]);
        let empty_b = pattern(&[vec![1.0, 2.0]]);
        assert!(L2Distance.distance(&empty_a, &empty_b).is_infinite());
        assert!(L1Distance.distance(&empty_a, &empty_b).is_infinite());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn shape_mismatch_panics() {
        let a = pattern(&[vec![1.0, 2.0]]);
        let b = pattern(&[vec![1.0, 2.0, 3.0]]);
        let _ = L2Distance.distance(&a, &b);
    }

    #[test]
    fn dtw_equals_zero_for_identical_patterns() {
        let a = pattern(&[vec![1.0, 2.0, 3.0], vec![0.0, 1.0, 0.0]]);
        let dtw = DtwDistance::default();
        assert_eq!(dtw.distance(&a, &a), 0.0);
        assert_eq!(dtw.name(), "DTW");
    }

    #[test]
    fn dtw_is_tolerant_to_small_shifts_where_l2_is_not() {
        // Pattern b is pattern a shifted by one column; DTW should consider
        // them much closer than the rigid L2 distance does.
        let a = pattern(&[vec![0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0, 0.0]]);
        let b = pattern(&[vec![0.0, 0.0, 0.0, 1.0, 5.0, 1.0, 0.0, 0.0]]);
        let d_l2 = L2Distance.distance(&a, &b);
        let d_dtw = DtwDistance::new(2).distance(&a, &b);
        assert!(d_dtw < d_l2 * 0.5, "dtw {d_dtw} vs l2 {d_l2}");
    }

    #[test]
    fn dtw_band_zero_is_rigid() {
        let a = pattern(&[vec![1.0, 2.0, 3.0]]);
        let b = pattern(&[vec![1.0, 4.0, 3.0]]);
        let rigid = DtwDistance::new(0).distance(&a, &b);
        assert!((rigid - 2.0).abs() < 1e-12);
    }

    #[test]
    fn dtw_handles_missing_by_mean_filling() {
        let a = Pattern::new(Timestamp::new(0), 1, 3, vec![Some(1.0), None, Some(3.0)]);
        let b = pattern(&[vec![1.0, 2.0, 3.0]]);
        let d = DtwDistance::new(1).distance(&a, &b);
        assert!(d.is_finite());
        let empty = Pattern::new(Timestamp::new(0), 1, 0, vec![]);
        assert_eq!(DtwDistance::new(1).distance(&empty, &empty), 0.0);
    }
}
