//! Incremental maintenance of the dissimilarity array `D` (Section 6.2).
//!
//! The naive implementation of Algorithm 1 recomputes every `D[j]` from
//! scratch at each imputation: `O(L·l·d)` work per missing value, which the
//! Section 7.4 breakdown shows is ~94 % of TKCM's runtime.  Section 6.2
//! observes that `D` can instead be *maintained* as the window slides, which
//! is what makes TKCM viable on unbounded streams.
//!
//! # The update equations
//!
//! Index candidates by their **lag** `a = t_n − t_j` (the age of the anchor
//! relative to the current time, `l ≤ a ≤ L − l`).  The squared L2
//! dissimilarity of Definition 2 between the candidate pattern `P(t_n − a)`
//! and the query pattern `P(t_n)` decomposes into per-column contributions:
//!
//! ```text
//! D²[a](t_n) = Σ_{i=0}^{l−1}  c(t_n − i, a)
//! c(t, a)    = Σ_{r ∈ R}      ( r(t − a) − r(t) )²
//! ```
//!
//! The key property: when the tick `t_{n+1}` arrives, the candidate at lag
//! `a` *and* the query both slide forward by one tick, so `l − 1` of the `l`
//! column contributions are shared and the sliding aggregate update is
//!
//! ```text
//! D²[a](t_{n+1}) = D²[a](t_n)  +  c(t_{n+1}, a)        (new column enters)
//!                              −  c(t_{n+1} − l, a)    (old column expires)
//! ```
//!
//! — `O(d)` work per candidate lag per tick ([`IncrementalDissimilarity::advance`]),
//! `O(L·d)` per tick over all lags, replacing the `O(L·l·d)` recompute per
//! imputation.  Missing values are handled by carrying the *observed pair
//! count* alongside each running sum: a pair contributes only when both the
//! candidate and the query slot are present, exactly mirroring
//! [`crate::dissimilarity::l2_components`].  Slots whose state changes after
//! the fact (missing → imputed via write-back) are patched through the
//! [`IncrementalDissimilarity::on_write`] invalidation hook so the running
//! sums always equal what a from-scratch recompute over the *current* window
//! contents would produce — the invariant the property tests in
//! `tests/incremental_properties.rs` assert.
//!
//! Floating-point drift from the add/subtract cycle is bounded by rebuilding
//! from scratch every `L` ticks (amortised `O(l·d)` per tick, negligible).

use std::sync::LazyLock;

use tkcm_timeseries::{SeriesId, StreamingWindow, Timestamp, TsError};

use crate::dissimilarity::l2_from_components;

/// From-scratch maintainer rebuilds (first use, de-sync fallback and the
/// periodic drift wash-out), fleet-wide.  Record-only (`obs-read-only`).
static REBUILDS: LazyLock<tkcm_obs::Counter> =
    LazyLock::new(|| tkcm_obs::registry().counter("tkcm_core_maintainer_rebuilds_total", &[]));

/// Sliding-aggregate state for the dissimilarity array `D` of Algorithm 1,
/// maintained per reference set (Section 6.2).
///
/// The state is valid for exactly one `(references, l, L, allow_missing)`
/// combination and must be kept in lock-step with the window it was built
/// over: call [`IncrementalDissimilarity::advance`] after every
/// `StreamingWindow::push_tick` and [`IncrementalDissimilarity::on_write`]
/// after every `StreamingWindow::write_imputed` that touches a reference
/// series.  [`crate::engine::TkcmEngine`] does both automatically.
#[derive(Clone, Debug)]
pub struct IncrementalDissimilarity {
    // Fields are `pub(crate)` so the snapshot codec (`persist`) can persist
    // the running sums bit-exactly; recovery equivalence depends on the
    // accumulated `f64`s coming back with their exact bits, not on a rebuild.
    pub(crate) references: Vec<SeriesId>,
    pub(crate) pattern_length: usize,
    pub(crate) window_length: usize,
    pub(crate) allow_missing: bool,
    /// `sums[a - l]` = running Σ of squared differences over observed pairs
    /// for the candidate at lag `a`.
    pub(crate) sums: Vec<f64>,
    /// `counts[a - l]` = number of observed pairs in that sum (≤ `d·l`).
    pub(crate) counts: Vec<u32>,
    /// Per-reference value at age `L − 1` after the last sync point: the slot
    /// the ring buffer will evict on the next push.  Needed because the
    /// expiring column of the maximum lag (`a = L − l`) reaches age `L`,
    /// which is no longer addressable after the push.
    pub(crate) prev_oldest: Vec<Option<f64>>,
    /// Window time of the last sync ([`Self::rebuild`] / [`Self::advance`]).
    pub(crate) last_time: Option<Timestamp>,
    pub(crate) ticks_since_rebuild: usize,
}

impl IncrementalDissimilarity {
    /// Creates an empty (un-synced) state for the given reference set.
    ///
    /// `pattern_length` and `window_length` are the `l` and `L` the paired
    /// imputer runs with; `allow_missing` mirrors
    /// `TkcmConfig::allow_missing_in_patterns`.
    pub fn new(
        references: Vec<SeriesId>,
        pattern_length: usize,
        window_length: usize,
        allow_missing: bool,
    ) -> Result<Self, TsError> {
        if references.is_empty() {
            return Err(TsError::invalid(
                "references",
                "incremental state needs at least one reference series",
            ));
        }
        if pattern_length == 0 {
            return Err(TsError::invalid("l", "pattern length must be positive"));
        }
        if window_length < 2 * pattern_length {
            return Err(TsError::invalid(
                "L",
                "window must hold the query pattern plus one candidate (L >= 2l)",
            ));
        }
        let lags = window_length - 2 * pattern_length + 1;
        let width = references.len();
        Ok(IncrementalDissimilarity {
            references,
            pattern_length,
            window_length,
            allow_missing,
            sums: vec![0.0; lags],
            counts: vec![0; lags],
            prev_oldest: vec![None; width],
            last_time: None,
            ticks_since_rebuild: 0,
        })
    }

    /// The reference series the state is maintained for.
    pub fn references(&self) -> &[SeriesId] {
        &self.references
    }

    /// The pattern length `l` the state is maintained for.
    pub fn pattern_length(&self) -> usize {
        self.pattern_length
    }

    /// The window length `L` the state is maintained for.
    pub fn window_length(&self) -> usize {
        self.window_length
    }

    /// Whether the state is in lock-step with the window (same current time).
    pub fn is_synced(&self, window: &StreamingWindow) -> bool {
        self.last_time.is_some() && self.last_time == window.current_time()
    }

    /// Number of maintained candidate lags (`L − 2l + 1`).
    pub fn lag_count(&self) -> usize {
        self.sums.len()
    }

    /// Recomputes every running sum from the current window contents:
    /// `O(L·l·d)`.  Called on first use, after a de-sync, and periodically to
    /// wash out floating-point drift.
    pub fn rebuild(&mut self, window: &StreamingWindow) -> Result<(), TsError> {
        REBUILDS.inc();
        let now = window
            .current_time()
            .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
        let l = self.pattern_length;
        self.sums.fill(0.0);
        self.counts.fill(0);
        // Per-reference values indexed by age, fetched once so the O(L·l)
        // inner loops index a flat slice instead of ring arithmetic.
        for &r in &self.references {
            let by_age: Vec<Option<f64>> = (0..self.window_length)
                .map(|age| window.buffer(r).map(|b| b.recent(age)))
                .collect::<Result<_, _>>()?;
            for (idx, (sum, count)) in self.sums.iter_mut().zip(self.counts.iter_mut()).enumerate()
            {
                let lag = idx + l;
                for i in 0..l {
                    if let (Some(x), Some(y)) = (by_age[lag + i], by_age[i]) {
                        *sum += (x - y) * (x - y);
                        *count += 1;
                    }
                }
            }
        }
        self.snapshot_oldest(window)?;
        self.last_time = Some(now);
        self.ticks_since_rebuild = 0;
        Ok(())
    }

    /// Applies the Section 6.2 sliding-aggregate update for one arrived tick:
    /// `O(d)` per lag, `O(L·d)` total.  Falls back to [`Self::rebuild`] when
    /// the state is not exactly one tick behind the window (first use, missed
    /// ticks) or the periodic drift-rebuild is due.
    pub fn advance(&mut self, window: &StreamingWindow) -> Result<(), TsError> {
        let now = window
            .current_time()
            .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
        // Exactly one tick behind ⇔ the previous tick (age 1) carries the
        // time of the last sync.  Comparing stored tick times (instead of
        // `now - t == 1`) keeps the O(d)-per-lag path on any real cadence —
        // at a 600-second spacing the delta is never 1 and the old check
        // silently degraded every advance into an O(L·l·d) rebuild.
        let one_step = self.last_time.is_some() && window.time_of_age(1) == self.last_time;
        if !one_step || self.ticks_since_rebuild >= self.window_length {
            return self.rebuild(window);
        }
        let l = self.pattern_length;
        for (ri, &r) in self.references.iter().enumerate() {
            let buf = window.buffer(r)?;
            // Loop-invariant query-side values: the entering column pairs
            // against age 0, the expiring column against age l.
            let y_new = buf.recent(0);
            let y_old = buf.recent(l);
            let evicted = self.prev_oldest[ri];
            for (idx, (sum, count)) in self.sums.iter_mut().zip(self.counts.iter_mut()).enumerate()
            {
                let lag = idx + l;
                // Entering column: c(t_{n+1}, a) — pairs r(t_{n+1} − a) with
                // the value that just arrived.
                if let (Some(x), Some(y)) = (buf.recent(lag), y_new) {
                    *sum += (x - y) * (x - y);
                    *count += 1;
                }
                // Expiring column: c(t_{n+1} − l, a).  Its candidate-side
                // value sits at age `lag + l`; for the maximum lag that is
                // age `L`, which the push just evicted — use the snapshot.
                let x = if lag + l == self.window_length {
                    evicted
                } else {
                    buf.recent(lag + l)
                };
                if let (Some(x), Some(y)) = (x, y_old) {
                    *sum -= (x - y) * (x - y);
                    *count -= 1;
                }
            }
        }
        self.snapshot_oldest(window)?;
        self.last_time = Some(now);
        self.ticks_since_rebuild += 1;
        Ok(())
    }

    /// Invalidation hook for a value written into the window after the fact
    /// (`StreamingWindow::write_imputed`): patches every running sum that
    /// paired against the changed slot, keeping the invariant that the sums
    /// equal a from-scratch recompute over current window contents.
    ///
    /// `age` is the age the value was written at and `old` the slot's value
    /// *before* the write (`None` for the usual missing → imputed
    /// transition).  Writes to series outside the reference set are ignored
    /// — anchor eligibility is re-read from the window at imputation time
    /// and needs no state.  Cost: `O(L)` for a current-tick write (`age 0`,
    /// the engine's write-back), `O(l)` additional for historical writes.
    pub fn on_write(
        &mut self,
        window: &StreamingWindow,
        series: SeriesId,
        age: usize,
        old: Option<f64>,
    ) -> Result<(), TsError> {
        let Some(ri) = self.references.iter().position(|&r| r == series) else {
            return Ok(());
        };
        if !self.is_synced(window) {
            // The sums describe an older window snapshot, so the write can't
            // be patched in coherently.  Drop the sync point entirely: a
            // merely one-tick-behind state would otherwise take the
            // incremental path on the next advance() and carry the unpatched
            // slot for up to L ticks.
            self.last_time = None;
            return Ok(());
        }
        let l = self.pattern_length;
        let buf = window.buffer(series)?;
        let new = buf.recent(age);
        if new == old {
            return Ok(());
        }
        // Query-side usage: the slot is column `age` of the query pattern and
        // pairs against every candidate lag — but only while `age < l`.
        if age < l {
            for (idx, (sum, count)) in self.sums.iter_mut().zip(self.counts.iter_mut()).enumerate()
            {
                let lag = idx + l;
                let x = buf.recent(lag + age);
                if let (Some(x), Some(y)) = (x, old) {
                    *sum -= (x - y) * (x - y);
                    *count -= 1;
                }
                if let (Some(x), Some(y)) = (x, new) {
                    *sum += (x - y) * (x - y);
                    *count += 1;
                }
            }
        }
        // Candidate-side usage: the slot is the candidate value of lag
        // `age − q` paired against query column `q` (age `q < l`).
        for q in 0..l.min(age + 1) {
            let lag = age - q;
            if lag < l || lag > self.window_length - l {
                continue;
            }
            let idx = lag - l;
            let y = buf.recent(q);
            if let (Some(x), Some(y)) = (old, y) {
                self.sums[idx] -= (x - y) * (x - y);
                self.counts[idx] -= 1;
            }
            if let (Some(x), Some(y)) = (new, y) {
                self.sums[idx] += (x - y) * (x - y);
                self.counts[idx] += 1;
            }
        }
        if age == self.window_length - 1 {
            self.prev_oldest[ri] = new;
        }
        Ok(())
    }

    /// The maintained dissimilarity `D` of the candidate at the given lag
    /// (`lag = t_n − t_j`), folded exactly like the from-scratch path: in
    /// strict mode (`allow_missing = false`) a candidate with *any* missing
    /// pair is `+∞`; in lenient mode missing pairs are skipped and the sum
    /// rescaled (Definition 2 as implemented by `L2Distance`).
    pub fn dissimilarity_at_lag(&self, lag: usize) -> f64 {
        let l = self.pattern_length;
        if lag < l || lag > self.window_length - l {
            return f64::INFINITY;
        }
        let idx = lag - l;
        let total = self.references.len() * l;
        let observed = self.counts[idx] as usize;
        if !self.allow_missing && observed != total {
            return f64::INFINITY;
        }
        l2_from_components(self.sums[idx], observed, total)
    }

    /// Verifies the state is usable for an imputation over `window` with the
    /// given reference set and pattern length.
    pub fn ensure_compatible(
        &self,
        window: &StreamingWindow,
        references: &[SeriesId],
        pattern_length: usize,
        allow_missing: bool,
    ) -> Result<(), TsError> {
        if self.references != references {
            return Err(TsError::invalid(
                "references",
                "incremental state was built for a different reference set",
            ));
        }
        if self.pattern_length != pattern_length || self.allow_missing != allow_missing {
            return Err(TsError::invalid(
                "config",
                "incremental state was built for a different configuration",
            ));
        }
        if self.window_length != window.length() {
            return Err(TsError::invalid(
                "L",
                "incremental state was built for a different window length",
            ));
        }
        if !self.is_synced(window) {
            return Err(TsError::invalid(
                "state",
                "incremental state is out of sync with the window; call advance() after every push_tick",
            ));
        }
        Ok(())
    }

    fn snapshot_oldest(&mut self, window: &StreamingWindow) -> Result<(), TsError> {
        for (ri, &r) in self.references.iter().enumerate() {
            self.prev_oldest[ri] = window.value_recent(r, self.window_length - 1)?;
        }
        Ok(())
    }
}

/// Per-float-update relative slack accrued into a maintained entry's error
/// radius.  One IEEE add/sub introduces at most `ε·|result|` of rounding and
/// the pair delta `(x−y)²` carries `O(ε)` of its own; 16 ulps per update is a
/// generous over-bound, and over-shooting the radius only *weakens* pruning
/// (the bound gets smaller), never correctness.
const ENTRY_ERR_ULP: f64 = 16.0 * f64::EPSILON;

/// Relative error radius assigned at seeding time: the seeded `sum_sq` is
/// bit-equal to the exact fold's accumulator, whose own rounding against the
/// mathematically exact sum is below `d·l·ε ≈ 5e−14` relative; `1e−12` covers
/// it with two orders of magnitude to spare.
const ENTRY_SEED_ERR: f64 = 1e-12;

/// Deflation applied when turning a maintained sum into a certified lower
/// bound, mirroring the signature index's Jensen-bound deflate.
const ENTRY_LB_DEFLATE: f64 = 1.0 - 1e-9;

/// Certified lower-bound state for one shortlisted candidate lag.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct ShortlistEntry {
    /// Running Σ of squared differences over observed pairs, maintained by
    /// the same sliding updates as [`IncrementalDissimilarity`].  Seeded
    /// bit-equal to the exact fold; drifts only by tracked float rounding.
    pub(crate) sum_sq: f64,
    /// Conservative radius on `|sum_sq − exact fold|`, accrued per float
    /// update and reset whenever the entry is re-seeded from an exact
    /// evaluation.  `sum_sq − err` is a certified admissible lower bound.
    pub(crate) err: f64,
    /// Number of observed pairs (integer-exact — trusted absolutely, so in
    /// strict mode `observed ≠ total` proves `D = +∞` without evaluation).
    pub(crate) observed: u32,
    /// Maintainer tick at which the entry last earned its keep (seeded,
    /// re-seeded, or used to prune); entries idle past the TTL are evicted.
    pub(crate) last_hit: u64,
}

/// Lower-bound verdict from a maintained shortlist entry.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MaintainedBound {
    /// Certified admissible lower bound on the candidate's unscaled
    /// `sum_sq` (hence on `D²`, since the Definition 2 rescale is ≥ 1).
    pub lb_sq: f64,
    /// `true` when the integer pair count proves a missing pair in strict
    /// mode: the exact path would return `D = +∞` *exactly*.
    pub certain_missing: bool,
}

/// Sparse sliding aggregates for the *shortlisted* candidate lags only —
/// the composed-path counterpart of [`IncrementalDissimilarity`], which
/// maintains all `J = L − 2l + 1` lags.
///
/// The composed imputation path ([`crate::imputer::TkcmImputer::impute_composed`])
/// seeds an entry whenever it exact-evaluates a candidate, from the exact
/// fold's own `(sum_sq, observed)` components, so re-admission of a pruned
/// lag costs nothing beyond the exact evaluation the path was going to do
/// anyway — and the re-seeded aggregates are *bit-identical* to the exact
/// fold by construction (the shortlist-maintenance invariant recorded in
/// ROADMAP.md).  Between seedings the entry slides with the window at O(d)
/// per tick, carrying a conservative rounding-error radius `err` so that
/// `sum_sq − err` stays a certified admissible lower bound on the exact
/// fold's value; the bound is *never* used as a dissimilarity — every `D`
/// that enters anchor selection is still computed by the exact fold.
#[derive(Clone, Debug)]
pub struct ShortlistMaintainer {
    // `pub(crate)` for the snapshot codec: recovered entries must keep their
    // exact accumulated bits (and error radii) so a recovered engine prunes
    // exactly like the live one did.
    pub(crate) references: Vec<SeriesId>,
    pub(crate) pattern_length: usize,
    pub(crate) window_length: usize,
    pub(crate) allow_missing: bool,
    /// Active entries keyed by lag.  A BTreeMap so iteration (and snapshot
    /// encoding) order is deterministic.
    pub(crate) entries: std::collections::BTreeMap<u32, ShortlistEntry>,
    /// Per-reference value at age `L − 1` after the last sync point (same
    /// role as [`IncrementalDissimilarity::prev_oldest`]).
    pub(crate) prev_oldest: Vec<Option<f64>>,
    /// Window time of the last sync.
    pub(crate) last_time: Option<Timestamp>,
    /// Advances seen; the clock for `last_hit` TTLs.
    pub(crate) ticks: u64,
}

impl ShortlistMaintainer {
    /// Creates an empty maintainer for the given reference set.
    pub fn new(
        references: Vec<SeriesId>,
        pattern_length: usize,
        window_length: usize,
        allow_missing: bool,
    ) -> Result<Self, TsError> {
        if references.is_empty() {
            return Err(TsError::invalid(
                "references",
                "shortlist state needs at least one reference series",
            ));
        }
        if pattern_length == 0 {
            return Err(TsError::invalid("l", "pattern length must be positive"));
        }
        if window_length < 2 * pattern_length {
            return Err(TsError::invalid(
                "L",
                "window must hold the query pattern plus one candidate (L >= 2l)",
            ));
        }
        let width = references.len();
        Ok(ShortlistMaintainer {
            references,
            pattern_length,
            window_length,
            allow_missing,
            entries: std::collections::BTreeMap::new(),
            prev_oldest: vec![None; width],
            last_time: None,
            ticks: 0,
        })
    }

    /// The reference series the state is maintained for.
    pub fn references(&self) -> &[SeriesId] {
        &self.references
    }

    /// The pattern length `l` the state is maintained for.
    pub fn pattern_length(&self) -> usize {
        self.pattern_length
    }

    /// The window length `L` the state is maintained for.
    pub fn window_length(&self) -> usize {
        self.window_length
    }

    /// Whether the state is in lock-step with the window.
    pub fn is_synced(&self, window: &StreamingWindow) -> bool {
        self.last_time.is_some() && self.last_time == window.current_time()
    }

    /// Number of lags currently carrying a maintained entry.
    pub fn maintained_lags(&self) -> usize {
        self.entries.len()
    }

    /// One sliding-aggregate update per entry + the delta's own rounding,
    /// tracked into the error radius.
    fn apply(entry: &mut ShortlistEntry, delta: f64, enter: bool) {
        if enter {
            entry.sum_sq += delta;
            entry.observed += 1;
        } else {
            entry.sum_sq -= delta;
            entry.observed = entry.observed.saturating_sub(1);
        }
        entry.err += (entry.sum_sq.abs() + delta.abs()) * ENTRY_ERR_ULP;
    }

    /// Slides every active entry forward by one tick (O(d) per entry).  When
    /// the state is not exactly one tick behind the window the entries are
    /// dropped instead — they re-seed lazily from the next imputation's exact
    /// evaluations, so a desync costs exactly what a cold start costs.
    pub fn advance(&mut self, window: &StreamingWindow) -> Result<(), TsError> {
        let now = window
            .current_time()
            .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
        let one_step = self.last_time.is_some() && window.time_of_age(1) == self.last_time;
        self.ticks += 1;
        if !one_step {
            self.entries.clear();
        } else if !self.entries.is_empty() {
            let l = self.pattern_length;
            for (ri, &r) in self.references.iter().enumerate() {
                let buf = window.buffer(r)?;
                let y_new = buf.recent(0);
                let y_old = buf.recent(l);
                let evicted = self.prev_oldest[ri];
                for (&lag, entry) in self.entries.iter_mut() {
                    let lag = lag as usize;
                    if let (Some(x), Some(y)) = (buf.recent(lag), y_new) {
                        Self::apply(entry, (x - y) * (x - y), true);
                    }
                    let x = if lag + l == self.window_length {
                        evicted
                    } else {
                        buf.recent(lag + l)
                    };
                    if let (Some(x), Some(y)) = (x, y_old) {
                        Self::apply(entry, (x - y) * (x - y), false);
                    }
                }
            }
            // TTL ~ l/2: an entry costs ~2d flops per tick to slide but
            // saves at most one O(d·l) exact fold when it prunes, so it
            // stops paying for itself after roughly l/2 idle ticks — past
            // that, lazy re-admission (one exact fold) is cheaper than the
            // accumulated slides.  Entries that keep earning their keep are
            // re-hit (seeded or touched) every imputation and never expire;
            // the floor keeps tiny-l maintainers from thrashing across the
            // short gaps inside one outage burst.
            let ttl = (self.pattern_length / 2).max(8) as u64;
            let ticks = self.ticks;
            self.entries
                .retain(|_, e| ticks.saturating_sub(e.last_hit) <= ttl);
        }
        self.snapshot_oldest(window)?;
        self.last_time = Some(now);
        Ok(())
    }

    /// Invalidation hook for a value written into the window after the fact —
    /// the per-entry mirror of [`IncrementalDissimilarity::on_write`].
    pub fn on_write(
        &mut self,
        window: &StreamingWindow,
        series: SeriesId,
        age: usize,
        old: Option<f64>,
    ) -> Result<(), TsError> {
        let Some(ri) = self.references.iter().position(|&r| r == series) else {
            return Ok(());
        };
        if !self.is_synced(window) {
            // Same reasoning as the dense maintainer: an unsynced state
            // cannot patch the write coherently, so drop everything.
            self.entries.clear();
            self.last_time = None;
            return Ok(());
        }
        let l = self.pattern_length;
        let buf = window.buffer(series)?;
        let new = buf.recent(age);
        if new == old {
            return Ok(());
        }
        // Query-side usage: column `age` of the query pairs against every
        // maintained lag, but only while `age < l`.
        if age < l {
            for (&lag, entry) in self.entries.iter_mut() {
                let x = buf.recent(lag as usize + age);
                if let (Some(x), Some(y)) = (x, old) {
                    Self::apply(entry, (x - y) * (x - y), false);
                }
                if let (Some(x), Some(y)) = (x, new) {
                    Self::apply(entry, (x - y) * (x - y), true);
                }
            }
        }
        // Candidate-side usage: the slot is the candidate value of lag
        // `age − q` paired against query column at age `q < l`.
        for q in 0..l.min(age + 1) {
            let lag = age - q;
            if lag < l || lag > self.window_length - l {
                continue;
            }
            let Some(entry) = self.entries.get_mut(&(lag as u32)) else {
                continue;
            };
            let y = buf.recent(q);
            if let (Some(x), Some(y)) = (old, y) {
                Self::apply(entry, (x - y) * (x - y), false);
            }
            if let (Some(x), Some(y)) = (new, y) {
                Self::apply(entry, (x - y) * (x - y), true);
            }
        }
        if age == self.window_length - 1 {
            self.prev_oldest[ri] = new;
        }
        Ok(())
    }

    /// (Re-)seeds the entry at `lag` from an exact evaluation's components:
    /// `sum_sq` bit-equal to the exact fold's accumulator, `observed` its
    /// pair count.  Resets the error radius to the seed slack.
    pub fn seed(&mut self, lag: usize, sum_sq: f64, observed: u32) {
        if lag < self.pattern_length || lag > self.window_length - self.pattern_length {
            return;
        }
        let lag32 = lag as u32;
        // Cap the shortlist so a cold-start exhaustive sweep cannot bloat
        // the per-tick advance to O(J·d); refreshing an existing entry is
        // always allowed, so hot lags never bounce off the cap.
        if self.entries.len() >= self.max_entries() && !self.entries.contains_key(&lag32) {
            return;
        }
        let last_hit = self.ticks;
        self.entries.insert(
            lag32,
            ShortlistEntry {
                sum_sq,
                err: sum_sq.abs() * ENTRY_SEED_ERR,
                observed,
                last_hit,
            },
        );
    }

    /// Shortlist capacity: generous for the composed path's k-seeding and
    /// survivor re-seeding, but far below J at paper scale.
    fn max_entries(&self) -> usize {
        (32 * self.pattern_length).max(1024)
    }

    /// The certified bound for `lag`, if an entry is maintained there.
    pub fn bound(&self, lag: usize) -> Option<MaintainedBound> {
        let lag32 = u32::try_from(lag).ok()?;
        let entry = self.entries.get(&lag32)?;
        let total = (self.references.len() * self.pattern_length) as u32;
        Some(MaintainedBound {
            lb_sq: (entry.sum_sq - entry.err).max(0.0) * ENTRY_LB_DEFLATE,
            certain_missing: !self.allow_missing && entry.observed != total,
        })
    }

    /// Marks the entry at `lag` as useful (its bound pruned the candidate or
    /// fed τ-seeding), refreshing its TTL.
    pub fn touch(&mut self, lag: usize) {
        let ticks = self.ticks;
        if let Ok(lag32) = u32::try_from(lag) {
            if let Some(e) = self.entries.get_mut(&lag32) {
                e.last_hit = ticks;
            }
        }
    }

    /// Maintained lags in ascending order of their (approximate) `sum_sq` —
    /// the τ-seeding order of the composed path.  Ties break by lag so the
    /// order is deterministic.
    pub fn lags_by_sum(&self) -> Vec<usize> {
        let mut lags: Vec<(f64, u32)> = self
            .entries
            .iter()
            .map(|(&lag, e)| (e.sum_sq, lag))
            .collect();
        lags.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        lags.into_iter().map(|(_, lag)| lag as usize).collect()
    }

    /// Verifies the state is usable for an imputation over `window` with the
    /// given reference set and pattern length.
    pub fn ensure_compatible(
        &self,
        window: &StreamingWindow,
        references: &[SeriesId],
        pattern_length: usize,
        allow_missing: bool,
    ) -> Result<(), TsError> {
        if self.references != references {
            return Err(TsError::invalid(
                "references",
                "shortlist state was built for a different reference set",
            ));
        }
        if self.pattern_length != pattern_length || self.allow_missing != allow_missing {
            return Err(TsError::invalid(
                "config",
                "shortlist state was built for a different configuration",
            ));
        }
        if self.window_length != window.length() {
            return Err(TsError::invalid(
                "L",
                "shortlist state was built for a different window length",
            ));
        }
        if !self.is_synced(window) {
            return Err(TsError::invalid(
                "state",
                "shortlist state is out of sync with the window; call advance() after every push_tick",
            ));
        }
        Ok(())
    }

    fn snapshot_oldest(&mut self, window: &StreamingWindow) -> Result<(), TsError> {
        for (ri, &r) in self.references.iter().enumerate() {
            self.prev_oldest[ri] = window.value_recent(r, self.window_length - 1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dissimilarity::{Dissimilarity, L2Distance};
    use crate::pattern::{extract_pattern_at_age, extract_query_pattern};
    use tkcm_timeseries::StreamTick;

    /// From-scratch D at one lag, exactly as the exact imputer path computes
    /// it (used here as the ground truth for the incremental updates).
    fn exact_d(
        window: &StreamingWindow,
        refs: &[SeriesId],
        l: usize,
        lag: usize,
        allow_missing: bool,
    ) -> f64 {
        let query = extract_query_pattern(window, refs, l, allow_missing).unwrap();
        let Some(query) = query else {
            return f64::INFINITY;
        };
        // The candidate lag *is* the anchor age — going through an absolute
        // timestamp here would re-introduce a unit-cadence assumption.
        let candidate = extract_pattern_at_age(window, refs, lag, l, allow_missing).unwrap();
        match candidate {
            Some(c) => L2Distance.distance(&c, &query),
            None => f64::INFINITY,
        }
    }

    fn assert_matches_exact(
        state: &IncrementalDissimilarity,
        window: &StreamingWindow,
        refs: &[SeriesId],
        l: usize,
        allow_missing: bool,
    ) {
        let filled = window.filled();
        if filled < 2 * l {
            return;
        }
        for lag in l..=(filled - l) {
            let exact = exact_d(window, refs, l, lag, allow_missing);
            let inc = state.dissimilarity_at_lag(lag);
            if exact.is_infinite() {
                assert!(inc.is_infinite(), "lag {lag}: exact inf, incremental {inc}");
            } else {
                assert!(
                    (exact - inc).abs() <= 1e-9 * (1.0 + exact.abs()),
                    "lag {lag}: exact {exact} vs incremental {inc}"
                );
            }
        }
    }

    #[test]
    fn advance_tracks_from_scratch_on_a_clean_stream() {
        let width = 2;
        let capacity = 24;
        let l = 3;
        let refs = vec![SeriesId(0), SeriesId(1)];
        let mut window = StreamingWindow::new(width, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, false).unwrap();
        // Run for 3 full window lengths so the ring wraps repeatedly.
        for t in 0..(3 * capacity) {
            let v0 = (t as f64 * 0.7).sin() * 10.0;
            let v1 = (t as f64 * 0.7 + 1.0).cos() * 5.0;
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![Some(v0), Some(v1)],
                ))
                .unwrap();
            state.advance(&window).unwrap();
            assert_matches_exact(&state, &window, &refs, l, false);
        }
        assert!(state.is_synced(&window));
        assert_eq!(state.lag_count(), capacity - 2 * l + 1);
    }

    #[test]
    fn advance_handles_missing_values_in_both_modes() {
        for allow_missing in [false, true] {
            let capacity = 20;
            let l = 2;
            let refs = vec![SeriesId(0), SeriesId(1)];
            let mut window = StreamingWindow::new(2, capacity);
            let mut state =
                IncrementalDissimilarity::new(refs.clone(), l, capacity, allow_missing).unwrap();
            for t in 0..(2 * capacity) {
                // Deterministic sprinkle of missing values on both series.
                let v0 = if t % 7 == 3 { None } else { Some(t as f64) };
                let v1 = if t % 5 == 1 { None } else { Some(-(t as f64)) };
                window
                    .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![v0, v1]))
                    .unwrap();
                state.advance(&window).unwrap();
                assert_matches_exact(&state, &window, &refs, l, allow_missing);
            }
        }
    }

    #[test]
    fn on_write_patches_current_tick_writes() {
        let capacity = 16;
        let l = 2;
        let refs = vec![SeriesId(0), SeriesId(1)];
        let mut window = StreamingWindow::new(2, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, true).unwrap();
        for t in 0..(2 * capacity) {
            let missing = t % 3 == 2;
            let v0 = if missing {
                None
            } else {
                Some((t as f64).sin())
            };
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![v0, Some((t as f64).cos())],
                ))
                .unwrap();
            state.advance(&window).unwrap();
            if missing {
                // Imputed write-back at age 0, exactly as the engine does it.
                window.write_imputed(SeriesId(0), 0, 0.25).unwrap();
                state.on_write(&window, SeriesId(0), 0, None).unwrap();
            }
            assert_matches_exact(&state, &window, &refs, l, true);
        }
    }

    #[test]
    fn on_write_patches_historical_writes() {
        let capacity = 16;
        let l = 3;
        let refs = vec![SeriesId(0)];
        let mut window = StreamingWindow::new(1, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, true).unwrap();
        for t in 0..capacity {
            // Missing at ticks 0, 1, 5, 9, 13 → ages 15, 14, 10, 6, 2 at the
            // end of the loop: historical gaps on both the query side
            // (age < l), the candidate side, and the about-to-evict slot
            // (age L−1, which exercises the snapshot refresh).
            let v = if t % 4 == 1 || t == 0 {
                None
            } else {
                Some(t as f64 * 0.5)
            };
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![v]))
                .unwrap();
            state.advance(&window).unwrap();
        }
        for age in [2usize, 6, 10, 14, capacity - 1] {
            let old = window.value_recent(SeriesId(0), age).unwrap();
            assert!(old.is_none(), "age {age} expected to be a gap");
            window.write_imputed(SeriesId(0), age, 7.25).unwrap();
            state.on_write(&window, SeriesId(0), age, old).unwrap();
            assert_matches_exact(&state, &window, &refs, l, true);
        }
        // A few more ticks: the backfilled oldest slot must be dropped from
        // the sums with its *written* value (snapshot path).
        for t in capacity..(capacity + 4) {
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![Some(t as f64 * 0.5)],
                ))
                .unwrap();
            state.advance(&window).unwrap();
            assert_matches_exact(&state, &window, &refs, l, true);
        }
    }

    #[test]
    fn writes_to_non_reference_series_are_ignored() {
        let capacity = 12;
        let refs = vec![SeriesId(1)];
        let mut window = StreamingWindow::new(2, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), 2, capacity, false).unwrap();
        for t in 0..capacity {
            let v0 = if t + 1 == capacity { None } else { Some(1.0) };
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![v0, Some(t as f64)],
                ))
                .unwrap();
            state.advance(&window).unwrap();
        }
        let before = state.clone();
        window.write_imputed(SeriesId(0), 0, 9.0).unwrap();
        state.on_write(&window, SeriesId(0), 0, None).unwrap();
        assert_eq!(before.sums, state.sums);
        assert_eq!(before.counts, state.counts);
        assert_matches_exact(&state, &window, &refs, 2, false);
    }

    #[test]
    fn advance_stays_incremental_on_non_unit_cadence() {
        // Ticks 600 timestamp units apart (a 10-minute cadence at second
        // resolution): the one-step detection must still take the O(d)-per-lag
        // sliding update, not fall back to a rebuild on every tick.
        let capacity = 16;
        let l = 2;
        let refs = vec![SeriesId(0), SeriesId(1)];
        let mut window = StreamingWindow::new(2, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, false).unwrap();
        // Stay below the periodic drift-rebuild horizon (`L` ticks) so the
        // counter below isolates the cadence behaviour.
        let total = capacity - 4;
        for t in 0..total {
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64 * 600),
                    vec![Some((t as f64 * 0.7).sin()), Some((t as f64 * 0.9).cos())],
                ))
                .unwrap();
            state.advance(&window).unwrap();
            assert_matches_exact(&state, &window, &refs, l, false);
        }
        // The first advance rebuilds (nothing to slide from); every later one
        // must have taken the incremental path.  A per-tick rebuild would
        // leave this counter at 0.
        assert_eq!(state.ticks_since_rebuild, total - 1);
    }

    #[test]
    fn write_on_unsynced_state_forces_a_rebuild() {
        // push -> advance -> push (no advance) -> write_imputed -> advance:
        // the write arrives while the state is one tick behind, so it cannot
        // be patched in; the state must drop its sync point and rebuild on
        // the next advance instead of sliding past the unpatched slot.
        let capacity = 12;
        let l = 2;
        let refs = vec![SeriesId(0)];
        let mut window = StreamingWindow::new(1, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, true).unwrap();
        for t in 0..capacity {
            let v = if t == 5 { None } else { Some((t as f64).sin()) };
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![v]))
                .unwrap();
            if t + 1 < capacity {
                state.advance(&window).unwrap();
            }
        }
        // State is now exactly one tick behind; write into history.
        let age = window.current_time().unwrap().tick() as usize - 5;
        window.write_imputed(SeriesId(0), age, 0.75).unwrap();
        state.on_write(&window, SeriesId(0), age, None).unwrap();
        assert!(!state.is_synced(&window));
        state.advance(&window).unwrap();
        assert_eq!(state.ticks_since_rebuild, 0, "advance must have rebuilt");
        assert_matches_exact(&state, &window, &refs, l, true);
    }

    #[test]
    fn desync_falls_back_to_rebuild() {
        let capacity = 12;
        let l = 2;
        let refs = vec![SeriesId(0)];
        let mut window = StreamingWindow::new(1, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, false).unwrap();
        for t in 0..capacity {
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![Some((t as f64).sin())],
                ))
                .unwrap();
            // Deliberately skip advance() on most ticks.
            if t % 5 == 0 {
                state.advance(&window).unwrap();
            }
        }
        state.advance(&window).unwrap();
        assert!(state.is_synced(&window));
        assert_matches_exact(&state, &window, &refs, l, false);
    }

    #[test]
    fn constructor_validates_parameters() {
        assert!(IncrementalDissimilarity::new(vec![], 2, 8, false).is_err());
        assert!(IncrementalDissimilarity::new(vec![SeriesId(0)], 0, 8, false).is_err());
        assert!(IncrementalDissimilarity::new(vec![SeriesId(0)], 5, 8, false).is_err());
        let state = IncrementalDissimilarity::new(vec![SeriesId(0)], 4, 8, false).unwrap();
        assert_eq!(state.lag_count(), 1);
        assert_eq!(state.pattern_length(), 4);
        assert_eq!(state.references(), &[SeriesId(0)]);
    }

    #[test]
    fn ensure_compatible_rejects_mismatches() {
        let capacity = 12;
        let mut window = StreamingWindow::new(2, capacity);
        let mut state =
            IncrementalDissimilarity::new(vec![SeriesId(1)], 2, capacity, false).unwrap();
        // Un-synced state is rejected even with matching parameters.
        assert!(state
            .ensure_compatible(&window, &[SeriesId(1)], 2, false)
            .is_err());
        for t in 0..4 {
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t),
                    vec![Some(1.0), Some(2.0)],
                ))
                .unwrap();
        }
        state.advance(&window).unwrap();
        assert!(state
            .ensure_compatible(&window, &[SeriesId(1)], 2, false)
            .is_ok());
        assert!(state
            .ensure_compatible(&window, &[SeriesId(0)], 2, false)
            .is_err());
        assert!(state
            .ensure_compatible(&window, &[SeriesId(1)], 3, false)
            .is_err());
        assert!(state
            .ensure_compatible(&window, &[SeriesId(1)], 2, true)
            .is_err());
        let other = StreamingWindow::new(2, capacity + 4);
        assert!(state
            .ensure_compatible(&other, &[SeriesId(1)], 2, false)
            .is_err());
    }

    /// From-scratch unscaled components at one lag, reference-major and
    /// chronological — the exact fold the composed path's `exact_candidate`
    /// computes, used as ground truth for the shortlist entries.
    fn exact_components(
        window: &StreamingWindow,
        refs: &[SeriesId],
        l: usize,
        lag: usize,
    ) -> (f64, u32) {
        let mut sum_sq = 0.0;
        let mut observed = 0u32;
        for &r in refs {
            for col in 0..l {
                let y = window.value_recent(r, l - 1 - col).unwrap();
                let x = window.value_recent(r, lag + (l - 1 - col)).unwrap();
                if let (Some(x), Some(y)) = (x, y) {
                    sum_sq += (x - y) * (x - y);
                    observed += 1;
                }
            }
        }
        (sum_sq, observed)
    }

    #[test]
    fn shortlist_entries_stay_certified_lower_bounds() {
        // Seed entries from exact components, slide for many ticks with
        // gaps and write-backs, and assert the invariant the composed path
        // relies on: the bound never exceeds the exact fold's sum_sq, and in
        // strict mode the integer pair count matches from-scratch exactly.
        let capacity = 32;
        let l = 4;
        let refs = vec![SeriesId(0), SeriesId(1)];
        let mut window = StreamingWindow::new(2, capacity);
        let mut sm = ShortlistMaintainer::new(refs.clone(), l, capacity, false).unwrap();
        let total = (refs.len() * l) as u32;
        for t in 0..(4 * capacity) {
            let v0 = if t % 9 == 4 {
                None
            } else {
                Some((t as f64 * 0.61).sin() * 7.0)
            };
            let v1 = if t % 13 == 6 {
                None
            } else {
                Some((t as f64 * 0.43).cos() * 3.0)
            };
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![v0, v1]))
                .unwrap();
            sm.advance(&window).unwrap();
            if t % 9 == 4 {
                // Engine-style write-back at age 0.
                window.write_imputed(SeriesId(0), 0, 1.25).unwrap();
                sm.on_write(&window, SeriesId(0), 0, None).unwrap();
            }
            let filled = window.filled();
            if filled < 2 * l {
                continue;
            }
            // Seed a spread of lags on some ticks only, so other ticks
            // exercise multi-tick sliding between seedings.
            if t % 5 == 0 {
                for lag in [l, l + 3, filled - l] {
                    let (sum_sq, observed) = exact_components(&window, &refs, l, lag);
                    sm.seed(lag, sum_sq, observed);
                }
            }
            for lag in l..=(filled - l) {
                let Some(bound) = sm.bound(lag) else { continue };
                let (exact_sq, observed) = exact_components(&window, &refs, l, lag);
                assert!(
                    bound.lb_sq <= exact_sq,
                    "tick {t} lag {lag}: lb {} > exact {exact_sq}",
                    bound.lb_sq
                );
                assert_eq!(
                    bound.certain_missing,
                    observed != total,
                    "tick {t} lag {lag}: pair count drifted"
                );
            }
        }
        assert!(sm.maintained_lags() > 0);
    }

    #[test]
    fn shortlist_desync_and_unsynced_write_drop_entries() {
        let capacity = 16;
        let l = 3;
        let refs = vec![SeriesId(0)];
        let mut window = StreamingWindow::new(1, capacity);
        let mut sm = ShortlistMaintainer::new(refs.clone(), l, capacity, true).unwrap();
        for t in 0..capacity {
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![Some(t as f64)],
                ))
                .unwrap();
            sm.advance(&window).unwrap();
        }
        sm.seed(l, 1.0, l as u32);
        assert_eq!(sm.maintained_lags(), 1);
        // Push without advancing, then write: the unsynced write must clear.
        window
            .push_tick(&StreamTick::new(
                Timestamp::new(capacity as i64),
                vec![None],
            ))
            .unwrap();
        window.write_imputed(SeriesId(0), 0, 2.0).unwrap();
        sm.on_write(&window, SeriesId(0), 0, None).unwrap();
        assert_eq!(sm.maintained_lags(), 0);
        assert!(!sm.is_synced(&window));
        // A later advance resyncs with no entries (they re-seed lazily).
        window
            .push_tick(&StreamTick::new(
                Timestamp::new(capacity as i64 + 1),
                vec![Some(1.0)],
            ))
            .unwrap();
        sm.advance(&window).unwrap();
        assert!(sm.is_synced(&window));
        assert_eq!(sm.maintained_lags(), 0);
    }

    #[test]
    fn shortlist_ttl_evicts_idle_entries() {
        let capacity = 12;
        let l = 2;
        let refs = vec![SeriesId(0)];
        let mut window = StreamingWindow::new(1, capacity);
        let mut sm = ShortlistMaintainer::new(refs.clone(), l, capacity, true).unwrap();
        let mut t = 0i64;
        let mut push = |window: &mut StreamingWindow, sm: &mut ShortlistMaintainer| {
            window
                .push_tick(&StreamTick::new(Timestamp::new(t), vec![Some(t as f64)]))
                .unwrap();
            sm.advance(window).unwrap();
            t += 1;
        };
        for _ in 0..capacity {
            push(&mut window, &mut sm);
        }
        sm.seed(l, 0.5, l as u32);
        sm.seed(l + 1, 0.5, l as u32);
        // Keep touching one entry; the other must age out after L idle ticks.
        for _ in 0..(capacity + 2) {
            push(&mut window, &mut sm);
            sm.touch(l);
        }
        assert!(sm.bound(l).is_some(), "touched entry evicted");
        assert!(sm.bound(l + 1).is_none(), "idle entry kept past TTL");
    }

    #[test]
    fn shortlist_lags_by_sum_orders_ascending() {
        let mut sm = ShortlistMaintainer::new(vec![SeriesId(0)], 2, 12, true).unwrap();
        sm.seed(4, 9.0, 2);
        sm.seed(2, 1.0, 2);
        sm.seed(7, 4.0, 2);
        sm.seed(3, 4.0, 2);
        assert_eq!(sm.lags_by_sum(), vec![2, 3, 7, 4]);
    }

    #[test]
    fn shortlist_constructor_and_compatibility_checks() {
        assert!(ShortlistMaintainer::new(vec![], 2, 8, false).is_err());
        assert!(ShortlistMaintainer::new(vec![SeriesId(0)], 0, 8, false).is_err());
        assert!(ShortlistMaintainer::new(vec![SeriesId(0)], 5, 8, false).is_err());
        let capacity = 12;
        let mut window = StreamingWindow::new(2, capacity);
        let mut sm = ShortlistMaintainer::new(vec![SeriesId(1)], 2, capacity, false).unwrap();
        assert!(sm
            .ensure_compatible(&window, &[SeriesId(1)], 2, false)
            .is_err());
        for t in 0..4 {
            window
                .push_tick(&StreamTick::new(
                    Timestamp::new(t),
                    vec![Some(1.0), Some(2.0)],
                ))
                .unwrap();
        }
        sm.advance(&window).unwrap();
        assert!(sm
            .ensure_compatible(&window, &[SeriesId(1)], 2, false)
            .is_ok());
        assert!(sm
            .ensure_compatible(&window, &[SeriesId(0)], 2, false)
            .is_err());
        assert!(sm
            .ensure_compatible(&window, &[SeriesId(1)], 3, false)
            .is_err());
        assert!(sm
            .ensure_compatible(&window, &[SeriesId(1)], 2, true)
            .is_err());
        // Out-of-range seeds are ignored.
        sm.seed(0, 1.0, 1);
        sm.seed(capacity, 1.0, 1);
        assert_eq!(sm.maintained_lags(), 0);
    }

    #[test]
    fn out_of_range_lags_are_infinite() {
        let capacity = 12;
        let mut window = StreamingWindow::new(1, capacity);
        let mut state =
            IncrementalDissimilarity::new(vec![SeriesId(0)], 3, capacity, false).unwrap();
        for t in 0..capacity {
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![Some(1.0)]))
                .unwrap();
        }
        state.advance(&window).unwrap();
        assert!(state.dissimilarity_at_lag(0).is_infinite());
        assert!(state.dissimilarity_at_lag(2).is_infinite());
        assert!(state.dissimilarity_at_lag(capacity - 2).is_infinite());
        assert!(state.dissimilarity_at_lag(3).is_finite());
    }
}
