//! Pattern-determination diagnostics (Definition 5).
//!
//! The reference series pattern-determine `s` at `t_n` with tolerance ε when
//! the values of `s` at the k most similar anchor points are all within ε of
//! each other.  The smaller ε, the more confident the imputation; Figure 13b
//! of the paper plots the *average* ε against the pattern length `l` on the
//! Chlorine dataset and shows it shrinking until `l ≈ 72`.

use tkcm_timeseries::Timestamp;

/// ε of a set of anchor values: the maximum pairwise absolute difference,
/// i.e. `max(values) − min(values)`.  Returns `None` for an empty set.
pub fn epsilon_of_anchors(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut lo = values[0];
    let mut hi = values[0];
    for &v in values {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    Some(hi - lo)
}

/// Consistency report for one imputation: the anchors, their values and the
/// resulting ε.
#[derive(Clone, Debug, PartialEq)]
pub struct ConsistencyReport {
    /// Anchor time points used for the imputation.
    pub anchors: Vec<Timestamp>,
    /// Values of the incomplete series at those anchors.
    pub anchor_values: Vec<f64>,
    /// The ε of Definition 5 (`None` when no anchors were found).
    pub epsilon: Option<f64>,
    /// The imputed value.
    pub imputed: f64,
}

impl ConsistencyReport {
    /// Builds a report from the anchors and the imputed value.
    pub fn new(anchors: Vec<Timestamp>, anchor_values: Vec<f64>, imputed: f64) -> Self {
        let epsilon = epsilon_of_anchors(&anchor_values);
        ConsistencyReport {
            anchors,
            anchor_values,
            epsilon,
            imputed,
        }
    }

    /// Whether the references pattern-determine the series within `tolerance`
    /// (Definition 5 with ε = `tolerance`).
    pub fn is_pattern_determining(&self, tolerance: f64) -> bool {
        match self.epsilon {
            Some(e) => e <= tolerance,
            None => false,
        }
    }

    /// Whether the imputed series is *consistent* per Definition 6: every
    /// anchor value is within ε of the imputed value.  By Lemma 5.2 this
    /// always holds when the imputed value is the anchor mean; the check is
    /// exposed so tests and the harness can verify the lemma empirically.
    pub fn is_consistent(&self) -> bool {
        match self.epsilon {
            None => false,
            Some(e) => self
                .anchor_values
                .iter()
                .all(|v| (v - self.imputed).abs() <= e + 1e-12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_is_value_range() {
        assert_eq!(epsilon_of_anchors(&[]), None);
        assert_eq!(epsilon_of_anchors(&[3.0]), Some(0.0));
        let eps = epsilon_of_anchors(&[21.9, 21.8]).unwrap();
        assert!((eps - 0.1).abs() < 1e-9);
        assert_eq!(epsilon_of_anchors(&[1.0, 5.0, 3.0]), Some(4.0));
    }

    #[test]
    fn example_9_of_the_paper() {
        // Anchors 14:00 and 13:35 with values 21.9 °C and 21.8 °C give
        // ε = 0.1 °C; the imputed value is their mean 21.85 °C.
        let report = ConsistencyReport::new(
            vec![Timestamp::new(7), Timestamp::new(2)],
            vec![21.9, 21.8],
            21.85,
        );
        assert!((report.epsilon.unwrap() - 0.1).abs() < 1e-9);
        assert!(report.is_pattern_determining(0.1 + 1e-9));
        assert!(!report.is_pattern_determining(0.05));
        assert!(report.is_consistent());
    }

    #[test]
    fn lemma_5_2_mean_imputation_is_consistent() {
        // For any anchor values, imputing their mean yields a consistent
        // series: |mean - v_i| <= max_j v_j - min_j v_j.
        let cases = vec![
            vec![1.0, 2.0, 3.0],
            vec![-5.0, 5.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![10.0, 10.5, 9.5, 10.2, 9.9],
        ];
        for values in cases {
            let mean = values.iter().sum::<f64>() / values.len() as f64;
            let report = ConsistencyReport::new(
                (0..values.len())
                    .map(|i| Timestamp::new(i as i64))
                    .collect(),
                values,
                mean,
            );
            assert!(report.is_consistent(), "{report:?}");
        }
    }

    #[test]
    fn inconsistent_when_imputed_value_is_far_from_anchors() {
        let report = ConsistencyReport::new(
            vec![Timestamp::new(0), Timestamp::new(5)],
            vec![1.0, 1.2],
            9.0,
        );
        assert!(!report.is_consistent());
    }

    #[test]
    fn empty_report_is_neither_determining_nor_consistent() {
        let report = ConsistencyReport::new(vec![], vec![], 0.0);
        assert_eq!(report.epsilon, None);
        assert!(!report.is_pattern_determining(1.0));
        assert!(!report.is_consistent());
    }
}
