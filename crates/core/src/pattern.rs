//! Patterns over reference time series (Definition 1).
//!
//! A pattern `P(t_i)` anchored at time `t_i` is a `d × l` matrix whose row
//! `r` holds the values `r(t_{i-l+1}), ..., r(t_i)` of the `r`-th reference
//! series.  Row = reference series, column = time offset; the last column is
//! the anchor time itself.  A pattern of length `l = 1` only captures the
//! instantaneous values, while `l > 1` additionally captures the trend —
//! which is what makes TKCM work for phase-shifted series (Section 5.2).

use tkcm_timeseries::{RingBuffer, SeriesId, StreamingWindow, Timestamp, TsError};

/// A `d × l` pattern over the reference series, anchored at some time point.
///
/// Values are stored row-major (`values[row * length + col]`); a slot may be
/// missing if the underlying window slot was missing (only possible when the
/// caller explicitly allows it).
#[derive(Clone, Debug, PartialEq)]
pub struct Pattern {
    anchor: Timestamp,
    rows: usize,
    length: usize,
    values: Vec<Option<f64>>,
}

impl Pattern {
    /// Creates a pattern from row-major optional values.
    ///
    /// # Panics
    /// Panics if `values.len() != rows * length`.
    pub fn new(anchor: Timestamp, rows: usize, length: usize, values: Vec<Option<f64>>) -> Self {
        assert_eq!(
            values.len(),
            rows * length,
            "Pattern::new: values length mismatch"
        );
        Pattern {
            anchor,
            rows,
            length,
            values,
        }
    }

    /// Creates a fully observed pattern from per-row slices of raw values.
    ///
    /// # Panics
    /// Panics if the rows have differing lengths.
    pub fn from_rows(anchor: Timestamp, rows: &[Vec<f64>]) -> Self {
        let length = rows.first().map(|r| r.len()).unwrap_or(0);
        assert!(
            rows.iter().all(|r| r.len() == length),
            "Pattern::from_rows: inconsistent row lengths"
        );
        Pattern {
            anchor,
            rows: rows.len(),
            length,
            values: rows.iter().flatten().map(|v| Some(*v)).collect(),
        }
    }

    /// The anchor time `t_i` of the pattern.
    pub fn anchor(&self) -> Timestamp {
        self.anchor
    }

    /// Number of reference series `d` (rows).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Pattern length `l` (columns).
    pub fn length(&self) -> usize {
        self.length
    }

    /// Value of reference `row` at column `col` (column `length-1` is the
    /// anchor time; column 0 is `l−1` ticks before the anchor).
    pub fn value(&self, row: usize, col: usize) -> Option<f64> {
        assert!(
            row < self.rows && col < self.length,
            "pattern index out of bounds"
        );
        self.values[row * self.length + col]
    }

    /// Whether every slot of the pattern is observed.
    pub fn is_complete(&self) -> bool {
        self.values.iter().all(|v| v.is_some())
    }

    /// Number of missing slots.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_none()).count()
    }

    /// Row `row` as a vector of optional values (chronological order).
    pub fn row(&self, row: usize) -> &[Option<f64>] {
        assert!(row < self.rows, "pattern row out of bounds");
        &self.values[row * self.length..(row + 1) * self.length]
    }

    /// Flattened row-major values with missing slots as `None`.
    pub fn values(&self) -> &[Option<f64>] {
        &self.values
    }
}

/// Extracts the pattern `P(anchor)` of length `l` over the given reference
/// series from a streaming window.
///
/// * If `allow_missing` is `false` the function returns `Ok(None)` when any
///   slot of the pattern is missing — the candidate is simply not usable.
/// * If `allow_missing` is `true` missing slots are kept as `None` and the
///   dissimilarity measures skip them.
///
/// Returns an error if the anchor (or the ticks `anchor - l + 1`) fall
/// outside the window.
pub fn extract_pattern(
    window: &StreamingWindow,
    references: &[SeriesId],
    anchor: Timestamp,
    length: usize,
    allow_missing: bool,
) -> Result<Option<Pattern>, TsError> {
    if length == 0 {
        return Err(TsError::invalid("l", "pattern length must be positive"));
    }
    let anchor_age = window.age_of(anchor)?;
    extract_pattern_at_age(window, references, anchor_age, length, allow_missing)
}

/// Extracts the pattern anchored `anchor_age` ticks in the past (0 = the
/// current tick).  This is the variant the imputer's candidate sweep uses:
/// Algorithm 1 walks candidate *ages*, so going through an absolute
/// timestamp (and back) would both cost an extra conversion per candidate
/// and silently assume a unit tick cadence.  The pattern's anchor timestamp
/// is read from the window's stored per-tick times.
pub fn extract_pattern_at_age(
    window: &StreamingWindow,
    references: &[SeriesId],
    anchor_age: usize,
    length: usize,
    allow_missing: bool,
) -> Result<Option<Pattern>, TsError> {
    if length == 0 {
        return Err(TsError::invalid("l", "pattern length must be positive"));
    }
    let anchor = window.time_of_age(anchor_age).ok_or_else(|| {
        TsError::invalid(
            "age",
            format!("anchor age {anchor_age} exceeds the number of pushed ticks"),
        )
    })?;
    // Validate that the whole pattern lies inside the window.
    let oldest_age = anchor_age + length - 1;
    if oldest_age >= window.length() {
        return Err(TsError::TimeOutOfRange {
            requested: anchor,
            earliest: window
                .time_of_age(window.length() - 1)
                .unwrap_or(Timestamp::MIN),
            latest: window.current_time().unwrap_or(Timestamp::MAX),
        });
    }

    let mut values = Vec::with_capacity(references.len() * length);
    for &r in references {
        for col in 0..length {
            // Column 0 is the oldest tick of the pattern.
            let age = anchor_age + (length - 1 - col);
            let v = window.value_recent(r, age)?;
            if v.is_none() && !allow_missing {
                return Ok(None);
            }
            values.push(v);
        }
    }
    Ok(Some(Pattern::new(anchor, references.len(), length, values)))
}

/// Extracts the query pattern `P(t_n)` anchored at the current time of the
/// window (Definition 1 applied at `t_n`).
pub fn extract_query_pattern(
    window: &StreamingWindow,
    references: &[SeriesId],
    length: usize,
    allow_missing: bool,
) -> Result<Option<Pattern>, TsError> {
    let now = window
        .current_time()
        .ok_or_else(|| TsError::invalid("window", "no tick has been pushed yet"))?;
    extract_pattern(window, references, now, length, allow_missing)
}

/// Extracts a pattern directly from per-series ring buffers using the
/// age-based indexing of Algorithm 1.  `anchor_age` is the age (0 = newest)
/// of the anchor tick.
///
/// This low-level variant avoids going through [`StreamingWindow`] and is
/// used by the batch imputer where only the reference ring buffers exist.
pub fn extract_pattern_from_buffers(
    buffers: &[&RingBuffer],
    anchor_age: usize,
    length: usize,
    allow_missing: bool,
) -> Option<Pattern> {
    let mut values = Vec::with_capacity(buffers.len() * length);
    for buf in buffers {
        for col in 0..length {
            let age = anchor_age + (length - 1 - col);
            let v = buf.recent(age);
            if v.is_none() && !allow_missing {
                return None;
            }
            values.push(v);
        }
    }
    // The anchor timestamp is unknown at this level; callers that need it use
    // the window-based extraction. We store the age as a negative timestamp
    // relative to 0 for debugging purposes.
    Some(Pattern::new(
        Timestamp::new(-(anchor_age as i64)),
        buffers.len(),
        length,
        values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkcm_timeseries::StreamTick;

    fn window_with(series: &[Vec<Option<f64>>]) -> StreamingWindow {
        let width = series.len();
        let len = series[0].len();
        let mut w = StreamingWindow::new(width, len);
        for t in 0..len {
            let values = series.iter().map(|s| s[t]).collect();
            w.push_tick(&StreamTick::new(Timestamp::new(t as i64), values))
                .unwrap();
        }
        w
    }

    #[test]
    fn pattern_accessors() {
        let p = Pattern::from_rows(
            Timestamp::new(5),
            &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]],
        );
        assert_eq!(p.anchor(), Timestamp::new(5));
        assert_eq!(p.rows(), 2);
        assert_eq!(p.length(), 3);
        assert!(p.is_complete());
        assert_eq!(p.missing_count(), 0);
        assert_eq!(p.value(0, 0), Some(1.0));
        assert_eq!(p.value(1, 2), Some(6.0));
        assert_eq!(p.row(1), &[Some(4.0), Some(5.0), Some(6.0)]);
        assert_eq!(p.values().len(), 6);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pattern_new_validates_size() {
        let _ = Pattern::new(Timestamp::new(0), 2, 2, vec![Some(1.0)]);
    }

    #[test]
    fn example_2_pattern_p_14_20() {
        // Table 2 / Figure 2b: P(14:20) over r1 and r2 with l = 3 contains
        // r1: 16.3, 17.1, 17.5 and r2: 20.2, 19.9, 18.2.
        // Map 13:25..14:20 to ticks 0..11; 14:20 is tick 11.
        let r1 = vec![
            16.5, 17.2, 17.8, 16.6, 15.8, 16.2, 17.4, 17.7, 15.3, 16.3, 17.1, 17.5,
        ];
        let r2 = vec![
            20.3, 19.8, 18.6, 18.8, 20.0, 20.5, 19.8, 18.2, 20.1, 20.2, 19.9, 18.2,
        ];
        let w = window_with(&[
            r1.iter().map(|v| Some(*v)).collect(),
            r2.iter().map(|v| Some(*v)).collect(),
        ]);
        let p = extract_query_pattern(&w, &[SeriesId(0), SeriesId(1)], 3, false)
            .unwrap()
            .unwrap();
        assert_eq!(p.anchor(), Timestamp::new(11));
        assert_eq!(p.row(0), &[Some(16.3), Some(17.1), Some(17.5)]);
        assert_eq!(p.row(1), &[Some(20.2), Some(19.9), Some(18.2)]);
    }

    #[test]
    fn pattern_at_past_anchor() {
        // P(14:00) = tick 7 with l = 3 covers ticks 5..=7.
        let r1 = vec![
            16.5, 17.2, 17.8, 16.6, 15.8, 16.2, 17.4, 17.7, 15.3, 16.3, 17.1, 17.5,
        ];
        let r2 = vec![
            20.3, 19.8, 18.6, 18.8, 20.0, 20.5, 19.8, 18.2, 20.1, 20.2, 19.9, 18.2,
        ];
        let w = window_with(&[
            r1.iter().map(|v| Some(*v)).collect(),
            r2.iter().map(|v| Some(*v)).collect(),
        ]);
        let p = extract_pattern(&w, &[SeriesId(0), SeriesId(1)], Timestamp::new(7), 3, false)
            .unwrap()
            .unwrap();
        assert_eq!(p.row(0), &[Some(16.2), Some(17.4), Some(17.7)]);
        assert_eq!(p.row(1), &[Some(20.5), Some(19.8), Some(18.2)]);
    }

    #[test]
    fn missing_slot_disqualifies_pattern_unless_allowed() {
        let mut r1: Vec<Option<f64>> = (0..10).map(|i| Some(i as f64)).collect();
        r1[8] = None;
        let w = window_with(&[r1]);
        // Pattern anchored at tick 9 with l = 3 covers ticks 7, 8, 9 -> missing.
        let strict = extract_pattern(&w, &[SeriesId(0)], Timestamp::new(9), 3, false).unwrap();
        assert!(strict.is_none());
        let lenient = extract_pattern(&w, &[SeriesId(0)], Timestamp::new(9), 3, true)
            .unwrap()
            .unwrap();
        assert_eq!(lenient.missing_count(), 1);
        assert!(!lenient.is_complete());
        assert_eq!(lenient.value(0, 1), None);
        // A pattern fully before the gap is still complete.
        let early = extract_pattern(&w, &[SeriesId(0)], Timestamp::new(7), 3, false)
            .unwrap()
            .unwrap();
        assert!(early.is_complete());
    }

    #[test]
    fn pattern_outside_window_is_an_error() {
        let w = window_with(&[(0..6).map(|i| Some(i as f64)).collect()]);
        // Anchor before the window start.
        assert!(extract_pattern(&w, &[SeriesId(0)], Timestamp::new(-1), 2, false).is_err());
        // Anchor inside, but pattern would reach before the window.
        assert!(extract_pattern(&w, &[SeriesId(0)], Timestamp::new(1), 3, false).is_err());
        // Zero pattern length is invalid.
        assert!(extract_pattern(&w, &[SeriesId(0)], Timestamp::new(5), 0, false).is_err());
        // Empty window has no query pattern.
        let empty = StreamingWindow::new(1, 4);
        assert!(extract_query_pattern(&empty, &[SeriesId(0)], 2, false).is_err());
    }

    #[test]
    fn buffer_extraction_matches_window_extraction() {
        let r1: Vec<Option<f64>> = (0..8).map(|i| Some(i as f64)).collect();
        let r2: Vec<Option<f64>> = (0..8).map(|i| Some(10.0 + i as f64)).collect();
        let w = window_with(&[r1, r2]);
        let from_window =
            extract_pattern(&w, &[SeriesId(0), SeriesId(1)], Timestamp::new(5), 3, false)
                .unwrap()
                .unwrap();
        let b0 = w.buffer(SeriesId(0)).unwrap();
        let b1 = w.buffer(SeriesId(1)).unwrap();
        let from_buffers = extract_pattern_from_buffers(&[b0, b1], 2, 3, false).unwrap();
        assert_eq!(from_window.values(), from_buffers.values());
    }

    #[test]
    fn buffer_extraction_handles_missing() {
        let mut buf = RingBuffer::new(6);
        for v in [Some(1.0), None, Some(3.0), Some(4.0)] {
            buf.push(v);
        }
        assert!(extract_pattern_from_buffers(&[&buf], 1, 3, false).is_none());
        let lenient = extract_pattern_from_buffers(&[&buf], 1, 3, true).unwrap();
        assert_eq!(lenient.row(0), &[Some(1.0), None, Some(3.0)]);
    }

    #[test]
    fn pattern_length_one_is_just_current_values() {
        let w = window_with(&[(0..5).map(|i| Some(i as f64 * 2.0)).collect()]);
        let p = extract_query_pattern(&w, &[SeriesId(0)], 1, false)
            .unwrap()
            .unwrap();
        assert_eq!(p.length(), 1);
        assert_eq!(p.value(0, 0), Some(8.0));
    }
}
