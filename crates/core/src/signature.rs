//! Quantized pattern-signature index: admissible candidate pruning.
//!
//! The incremental maintenance of Section 6.2 made each candidate lag cheap
//! (`O(d)`/tick), but the engine still touches *every* candidate, so the
//! per-tick cost stays linear in the candidate count `J = L − 2l + 1`.  This
//! module keeps a coarse, block-quantized summary of every series in the
//! window — a piecewise min/max envelope plus a missing-slot count per block
//! of [`SIGNATURE_BLOCK_LEN`] consecutive ticks — and uses it to compute a
//! cheap *lower bound* `LB[j] ≤ D[j]` on each candidate's L2 dissimilarity.
//! The imputer ([`crate::imputer::TkcmImputer::impute_pruned`]) then
//! evaluates exact dissimilarities only for a shortlist and proves the rest
//! out of the k-NN set.
//!
//! # The lower bound, and why it is admissible
//!
//! For a candidate at lag `a`, the exact squared dissimilarity is
//! `D²[a] = scale · Σ (x − y)²` over the pairs `(x, y)` of candidate and
//! query values observed on both sides, with `scale = total/observed ≥ 1`
//! (Definition 2 as implemented by `l2_components`/`l2_from_components`).
//! Split the candidate range into block-aligned segments.  For a segment
//! whose candidate values lie in the envelope `[c_lo, c_hi]` and whose
//! paired query values lie in `[q_lo, q_hi]`, every observed pair satisfies
//! `(x − y)² ≥ g²` where `g = max(0, q_lo − c_hi, c_lo − q_hi)` is the gap
//! between the envelopes.  At least
//! `n_certain = seg_len − missing_candidate − missing_query` pairs are
//! observed on both sides (block-level missing counts over-count a partial
//! segment, which only lowers `n_certain` — still safe), so
//!
//! ```text
//! Σ g² · n_certain  ≤  Σ_observed (x − y)²  ≤  D²[a]
//! ```
//!
//! Envelopes are maintained *outward only*: a write-back widens the block's
//! min/max (never shrinks it), so the envelope stays a superset of the
//! in-window values and the bound stays a lower bound.  Gaps in the data are
//! handled by the missing counts; ring wrap-around is handled by keying the
//! blocks on absolute tick ordinals (`StreamingWindow::ordinal_of_age`),
//! which do not move as the ring wraps.
//!
//! The pruning itself (in the imputer) compares `LB` against the float sum
//! `τ` of a feasible k-solution evaluated exactly; `LB > τ` proves the
//! candidate cannot appear in any optimal selection of ≤ k anchors, because
//! every member of an optimal solution has `D ≤ optimal sum ≤ τ`.

use tkcm_timeseries::{SeriesId, StreamingWindow, TsError};

/// Number of consecutive ticks summarized by one signature block.
///
/// This is an on-disk format constant (the index is persisted in snapshots):
/// changing it changes the decoded block geometry, so it is covered by the
/// `single-definition` rule of `tkcm-lint` and any change must ride a
/// `SNAPSHOT_FORMAT_VERSION` bump.
pub const SIGNATURE_BLOCK_LEN: u32 = 16;

/// Picks the level-1 run length (in candidate lags) for the composed
/// imputation path from config geometry, block-aligned and static per run.
///
/// The run bound's cost is ~one block walk per `SIGNATURE_BLOCK_LEN`-chunk
/// of the pattern, so wider runs amortize better for longer patterns; but a
/// run's union envelope loosens as it widens, so the width is capped at 8
/// blocks.  Short patterns (where the per-lag sweep is cheap anyway) get a
/// single block.
pub fn level1_run_len(pattern_length: usize) -> usize {
    let b = SIGNATURE_BLOCK_LEN as usize;
    (pattern_length / b).clamp(1, 8) * b
}

/// Summary of one block of [`SIGNATURE_BLOCK_LEN`] consecutive ticks of one
/// series: an outward-only min/max envelope over the observed values, the
/// number of missing slots, and the running sum of the observed values.
#[derive(Clone, Copy, Debug)]
pub struct BlockSummary {
    /// Lower envelope of the observed values (`+∞` while the block is all
    /// missing).  Only ever moves down.
    pub min: f64,
    /// Upper envelope of the observed values (`−∞` while the block is all
    /// missing).  Only ever moves up.
    pub max: f64,
    /// Number of slots in the block with no value.  Exact as long as every
    /// missing → imputed transition is reported via [`SignatureIndex::on_write`].
    pub missing: u32,
    /// Sum of the observed values of the block, accumulated in push order.
    /// Feeds the block-mean (Jensen) lower bound, which is only admissible
    /// while the sum tracks the block's current contents exactly — an
    /// overwrite of an already observed slot cannot be tracked (the old
    /// value is gone), so it *poisons* the sum to NaN and the mean bound is
    /// skipped for that block from then on (the envelope bound still holds).
    pub sum: f64,
}

impl PartialEq for BlockSummary {
    fn eq(&self, other: &Self) -> bool {
        self.min == other.min
            && self.max == other.max
            && self.missing == other.missing
            // A poisoned (NaN) sum compares equal to a poisoned sum, so
            // snapshot round-trips of a poisoned block stay comparable.
            && (self.sum == other.sum || (self.sum.is_nan() && other.sum.is_nan()))
    }
}

impl BlockSummary {
    fn empty() -> Self {
        BlockSummary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            missing: 0,
            sum: 0.0,
        }
    }

    fn absorb(&mut self, value: Option<f64>) {
        match value {
            Some(v) => {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
                self.sum += v;
            }
            None => self.missing += 1,
        }
    }
}

/// Gap between two min/max envelopes: the smallest possible |x − y| for
/// `x ∈ [a_lo, a_hi]`, `y ∈ [b_lo, b_hi]`.
fn envelope_gap(a: &BlockSummary, b: &BlockSummary) -> f64 {
    let g = (b.min - a.max).max(a.min - b.max);
    g.max(0.0)
}

/// Precomputed query-side context for [`SignatureIndex::lower_bound_sq_with_query`].
///
/// The query pattern is fixed for the whole candidate sweep of one
/// imputation, so its per-sub-range statistics are precomputed once —
/// prefix sums and missing counts for O(1) segment means, and sparse
/// min/max tables for O(1) exact segment envelopes — and reused across all
/// `J` candidates.  Construction is `O(d · l · log l)`, negligible next to
/// the sweep itself.
#[derive(Clone, Debug)]
pub struct SignatureQuery {
    length: usize,
    refs: Vec<QueryRef>,
}

/// Range tables of one reference row of the query pattern.
#[derive(Clone, Debug)]
struct QueryRef {
    /// `prefix_sum[p]` = sum of the observed values at positions `< p`
    /// (missing contributes 0).
    prefix_sum: Vec<f64>,
    /// `prefix_missing[p]` = number of missing slots at positions `< p`.
    prefix_missing: Vec<u32>,
    /// Sparse tables: `mins[k][i]` covers positions `[i, i + 2^k)`; missing
    /// slots hold `+∞` / `−∞` so they drop out of range envelopes.
    mins: Vec<Vec<f64>>,
    maxs: Vec<Vec<f64>>,
}

impl QueryRef {
    fn new(row: &[Option<f64>]) -> Self {
        let l = row.len();
        let mut prefix_sum = Vec::with_capacity(l + 1);
        let mut prefix_missing = Vec::with_capacity(l + 1);
        prefix_sum.push(0.0);
        prefix_missing.push(0);
        for v in row {
            prefix_sum.push(prefix_sum.last().unwrap() + v.unwrap_or(0.0));
            prefix_missing.push(prefix_missing.last().unwrap() + u32::from(v.is_none()));
        }
        let base_min: Vec<f64> = row.iter().map(|v| v.unwrap_or(f64::INFINITY)).collect();
        let base_max: Vec<f64> = row.iter().map(|v| v.unwrap_or(f64::NEG_INFINITY)).collect();
        let mut mins = vec![base_min];
        let mut maxs = vec![base_max];
        let mut width = 1usize;
        while width * 2 <= l {
            let prev_min = mins.last().unwrap();
            let prev_max = maxs.last().unwrap();
            let next_len = l - width * 2 + 1;
            let mut next_min = Vec::with_capacity(next_len);
            let mut next_max = Vec::with_capacity(next_len);
            for i in 0..next_len {
                next_min.push(prev_min[i].min(prev_min[i + width]));
                next_max.push(prev_max[i].max(prev_max[i + width]));
            }
            mins.push(next_min);
            maxs.push(next_max);
            width *= 2;
        }
        QueryRef {
            prefix_sum,
            prefix_missing,
            mins,
            maxs,
        }
    }

    /// Exact min/max over the *observed* values at positions `[a, b]`
    /// (inclusive); `(+∞, −∞)` when every position is missing.
    fn range_min_max(&self, a: usize, b: usize) -> (f64, f64) {
        let len = b - a + 1;
        let k = (usize::BITS - 1 - len.leading_zeros()) as usize;
        let k = k.min(self.mins.len() - 1);
        let right = b + 1 - (1 << k);
        (
            self.mins[k][a].min(self.mins[k][right]),
            self.maxs[k][a].max(self.maxs[k][right]),
        )
    }
}

impl SignatureQuery {
    /// Builds the context from the query pattern's reference rows
    /// (chronological order, position 0 = oldest — exactly
    /// [`crate::pattern::Pattern::row`]).  Every row must have the same
    /// length.
    pub fn new(rows: &[&[Option<f64>]]) -> Self {
        let length = rows.first().map(|r| r.len()).unwrap_or(0);
        assert!(
            rows.iter().all(|r| r.len() == length),
            "SignatureQuery: ragged query rows"
        );
        SignatureQuery {
            length,
            refs: rows.iter().map(|r| QueryRef::new(r)).collect(),
        }
    }

    /// The pattern length the context was built for.
    pub fn length(&self) -> usize {
        self.length
    }
}

/// Block-quantized signature index over all series of one streaming window.
///
/// Maintained in lock-step with the window: [`SignatureIndex::on_push`]
/// after every `push_tick` (O(width)) and [`SignatureIndex::on_write`] after
/// every `write_imputed`.  [`crate::engine::TkcmEngine`] does both
/// automatically when pruning is active.
#[derive(Clone, Debug, PartialEq)]
pub struct SignatureIndex {
    // Fields are `pub(crate)` so the snapshot codec (`persist`) can persist
    // the index bit-exactly — recovered envelopes keep the widenings applied
    // by historical write-backs instead of snapping back to tight rebuilt
    // ones, so a recovered engine prunes exactly like the live one did.
    pub(crate) width: usize,
    pub(crate) window_length: usize,
    /// Ordinal of the first tick covered by `blocks[_][0]` (a multiple of
    /// [`SIGNATURE_BLOCK_LEN`]).
    pub(crate) base_ordinal: u64,
    /// Number of ticks absorbed so far (mirrors the window's tick counter).
    pub(crate) ticks_seen: u64,
    /// `blocks[series][b]` summarizes ordinals
    /// `base_ordinal + b·B .. base_ordinal + (b+1)·B`.
    pub(crate) blocks: Vec<Vec<BlockSummary>>,
}

impl SignatureIndex {
    /// Creates an empty index for `width` series over a window of length `L`.
    pub fn new(width: usize, window_length: usize) -> Result<Self, TsError> {
        if width == 0 {
            return Err(TsError::invalid("width", "need at least one series"));
        }
        if window_length == 0 {
            return Err(TsError::invalid("L", "window length must be positive"));
        }
        Ok(SignatureIndex {
            width,
            window_length,
            base_ordinal: 0,
            ticks_seen: 0,
            blocks: vec![Vec::new(); width],
        })
    }

    /// The number of series the index covers.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the index has absorbed the same number of ticks as a window.
    pub fn is_synced(&self, window: &StreamingWindow) -> bool {
        self.ticks_seen == window.ticks_seen() as u64
    }

    /// Absorbs one arrived tick (`values` in window series order).  O(width).
    pub fn on_push(&mut self, values: &[Option<f64>]) -> Result<(), TsError> {
        if values.len() != self.width {
            return Err(TsError::LengthMismatch {
                left: values.len(),
                right: self.width,
                context: "stream tick width vs signature index width",
            });
        }
        let block_len = SIGNATURE_BLOCK_LEN as u64;
        let ordinal = self.ticks_seen;
        if ordinal == self.block_end() {
            for series in &mut self.blocks {
                series.push(BlockSummary::empty());
            }
        }
        for (series, v) in self.blocks.iter_mut().zip(values.iter()) {
            if let Some(last) = series.last_mut() {
                last.absorb(*v);
            }
        }
        self.ticks_seen += 1;
        // Retire blocks that no longer overlap the window: the oldest
        // in-window ordinal is ticks_seen − L.
        let cutoff = self.ticks_seen.saturating_sub(self.window_length as u64);
        while self.base_ordinal + block_len <= cutoff {
            for series in &mut self.blocks {
                if !series.is_empty() {
                    series.remove(0);
                }
            }
            self.base_ordinal += block_len;
        }
        Ok(())
    }

    /// Reports a value written into an existing slot (the engine's imputed
    /// write-back): widens the block's envelope outward and, when the slot
    /// was missing before, decrements the missing count.
    pub fn on_write(&mut self, series: SeriesId, age: usize, value: f64, was_missing: bool) {
        let Some(ordinal) = self.ordinal_of_age(age) else {
            return;
        };
        let Some(block) = self
            .blocks
            .get_mut(series.index())
            .and_then(|s| Self::block_of(s, self.base_ordinal, ordinal))
        else {
            return;
        };
        block.min = block.min.min(value);
        block.max = block.max.max(value);
        if was_missing {
            block.missing = block.missing.saturating_sub(1);
            // The slot joins the observed set; a NaN (poisoned) sum stays
            // poisoned through the addition, which is exactly right.
            block.sum += value;
        } else {
            // Overwriting an observed slot: the old value's contribution is
            // unknown, so the sum can no longer be trusted.  Poison it —
            // the mean bound degrades to the envelope bound for this block.
            block.sum = f64::NAN;
        }
    }

    /// One past the ordinal covered by the last allocated block.
    fn block_end(&self) -> u64 {
        let block_len = SIGNATURE_BLOCK_LEN as u64;
        let count = self.blocks.first().map(|s| s.len()).unwrap_or(0) as u64;
        self.base_ordinal + count * block_len
    }

    fn ordinal_of_age(&self, age: usize) -> Option<u64> {
        let age = age as u64;
        if age >= self.ticks_seen {
            return None;
        }
        // Ordinal (push-count) arithmetic, not timestamp arithmetic: block
        // membership is defined by push position, so no cadence is assumed.
        Some(self.ticks_seen - 1 - age) // tkcm-lint: allow(cadence)
    }

    fn block_of(series: &mut [BlockSummary], base: u64, ordinal: u64) -> Option<&mut BlockSummary> {
        if ordinal < base {
            return None;
        }
        let idx = ((ordinal - base) / SIGNATURE_BLOCK_LEN as u64) as usize;
        series.get_mut(idx)
    }

    fn block_at(&self, series: usize, ordinal: u64) -> Option<&BlockSummary> {
        if ordinal < self.base_ordinal {
            return None;
        }
        let idx = ((ordinal - self.base_ordinal) / SIGNATURE_BLOCK_LEN as u64) as usize;
        self.blocks.get(series).and_then(|s| s.get(idx))
    }

    /// Like [`SignatureIndex::lower_bound_sq`] but *query-aware*: the query
    /// side is the exact extracted pattern instead of its block envelopes,
    /// which tightens the bound in two ways.
    ///
    /// 1. **Exact query segment statistics** — per candidate segment the
    ///    paired query sub-range's min/max and missing count come from the
    ///    pattern itself ([`SignatureQuery`] precomputes range tables), so
    ///    the envelope gap loses the query-side quantization slack.
    /// 2. **Block-mean (Jensen) bound** — when a segment covers a whole
    ///    block with no missing slot on either side, all
    ///    `B = SIGNATURE_BLOCK_LEN` pairs are observed and
    ///    `Σ (x_i − y_i)² ≥ (Σ (x_i − y_i))² / B = B · (x̄ − ȳ)²`
    ///    (Cauchy–Schwarz), with `x̄` from the maintained block sum and `ȳ`
    ///    from the query prefix sums.  This separates candidates whose
    ///    *level* differs from the query even when their envelopes overlap
    ///    (the common case for smooth seasonal signals), and is deflated by
    ///    one part in 10⁹ so float rounding in the sums can never push it
    ///    above the true value.  A block whose sum was poisoned by an
    ///    overwrite falls back to the envelope bound.
    ///
    /// The per-segment contribution is the max of the two bounds; both are
    /// admissible, so the max is.  Semantics of the returns are identical to
    /// [`SignatureIndex::lower_bound_sq`].
    pub fn lower_bound_sq_with_query(
        &self,
        references: &[SeriesId],
        lag: usize,
        l: usize,
        query: &SignatureQuery,
    ) -> (f64, bool) {
        if self.ticks_seen == 0
            || l == 0
            || query.length != l
            || query.refs.len() != references.len()
        {
            return (0.0, false);
        }
        let Some(query_newest) = self.ordinal_of_age(0) else {
            return (0.0, false);
        };
        let Some(cand_newest) = self.ordinal_of_age(lag) else {
            return (0.0, false);
        };
        let span = (l - 1) as u64;
        if cand_newest < span || query_newest < span {
            return (0.0, false);
        }
        let cand_start = cand_newest - span;
        if cand_start < self.base_ordinal {
            return (0.0, false);
        }
        let block_len = SIGNATURE_BLOCK_LEN as u64;
        let deflate = 1.0 - 1e-9;

        let mut sum = 0.0_f64;
        let mut certain_missing = false;
        for (r, qref) in references.iter().zip(query.refs.iter()) {
            let Some(series) = self.blocks.get(r.index()) else {
                continue;
            };
            let mut seg_start = cand_start;
            while seg_start <= cand_newest {
                let block_base = seg_start & !(block_len - 1);
                let seg_end = (block_base + block_len - 1).min(cand_newest);
                let bi = ((block_base - self.base_ordinal) / block_len) as usize;
                let Some(cand_block) = series.get(bi) else {
                    seg_start = seg_end + 1;
                    continue;
                };
                let full_block = seg_start == block_base && seg_end == block_base + block_len - 1;
                if cand_block.missing > 0 && full_block {
                    certain_missing = true;
                }
                // Pattern positions paired with this segment (0 = oldest).
                let p_s = (seg_start - cand_start) as usize;
                let p_e = (seg_end - cand_start) as usize;
                let q_missing = (qref.prefix_missing[p_e + 1] - qref.prefix_missing[p_s]) as u64;
                let seg_len = seg_end - seg_start + 1;
                let uncertain = u64::from(cand_block.missing) + q_missing;
                if seg_len > uncertain {
                    let clean_block = full_block
                        && cand_block.missing == 0
                        && q_missing == 0
                        && !cand_block.sum.is_nan();
                    if clean_block {
                        // All B pairs observed and the sum unpoisoned: the
                        // mean bound alone — on smooth signals it dominates
                        // the envelope gap (which needs *disjoint* ranges),
                        // and skipping the range-table lookups here keeps
                        // the sweep's constant small.
                        let n = block_len as f64;
                        let cand_mean = cand_block.sum / n;
                        let q_mean = (qref.prefix_sum[p_e + 1] - qref.prefix_sum[p_s]) / n;
                        let diff = cand_mean - q_mean;
                        sum += diff * diff * n * deflate;
                    } else {
                        let n_certain = (seg_len - uncertain) as f64;
                        let (q_min, q_max) = qref.range_min_max(p_s, p_e);
                        let g = (q_min - cand_block.max)
                            .max(cand_block.min - q_max)
                            .max(0.0);
                        if g > 0.0 && g.is_finite() {
                            sum += g * g * n_certain;
                        }
                    }
                }
                seg_start = seg_end + 1;
            }
        }
        (sum, certain_missing)
    }

    /// Level-1 *run* bound: an admissible lower bound on the squared,
    /// unscaled L2 dissimilarity of **every** candidate lag in
    /// `lag_lo .. lag_lo + run_len`, computed from coarse block-envelope
    /// unions — one bound for a whole run of consecutive lags, so the
    /// per-imputation sweep can skip the run wholesale when the bound
    /// already exceeds the pruning threshold.
    ///
    /// For a chunk of `B = SIGNATURE_BLOCK_LEN` query positions `[p_s, p_e]`
    /// the candidate ordinals paired with it across the run sweep the region
    /// `[start(lag_hi) + p_s, start(lag_lo) + p_e]` (length
    /// `chunk_len + run_len − 1`).  The union envelope of the blocks covering
    /// that region contains every candidate value any lag in the run pairs
    /// with the chunk, and the summed block missing counts over-count any
    /// single lag's missing pairs, so with `g` the gap between the union
    /// envelope and the exact query-chunk envelope,
    /// `g² · max(0, chunk_len − q_missing − region_missing)` lower-bounds
    /// each lag's contribution.  Per reference the cost is
    /// `O((l/B) · (run_len/B + 2))` block reads for `run_len` lags — versus
    /// `O(run_len · l/B)` for per-lag level-0 bounds.
    ///
    /// Unlike the per-lag bound there is no certain-missing signal here: a
    /// missing slot in the region need not lie inside any particular lag's
    /// range.  Returns `0.0` (the vacuous bound) whenever a region is not
    /// fully resolvable, so the caller never over-prunes.
    pub fn run_lower_bound_sq_with_query(
        &self,
        references: &[SeriesId],
        lag_lo: usize,
        run_len: usize,
        l: usize,
        query: &SignatureQuery,
    ) -> f64 {
        if self.ticks_seen == 0
            || l == 0
            || run_len == 0
            || query.length != l
            || query.refs.len() != references.len()
        {
            return 0.0;
        }
        let lag_hi = lag_lo + (run_len - 1);
        let need = l as u64 + lag_hi as u64;
        if self.ticks_seen < need {
            return 0.0;
        }
        // Oldest and newest candidate start ordinals across the run: larger
        // lag ⇒ older candidate, so lag_hi anchors the region's left edge.
        let start_hi = self.ticks_seen - need;
        let start_lo = self.ticks_seen - l as u64 - lag_lo as u64;
        let block_len = SIGNATURE_BLOCK_LEN as u64;

        let mut sum = 0.0_f64;
        for (r, qref) in references.iter().zip(query.refs.iter()) {
            let series = r.index();
            let mut p_s = 0usize;
            while p_s < l {
                let p_e = (p_s + SIGNATURE_BLOCK_LEN as usize - 1).min(l - 1);
                let region_start = start_hi + p_s as u64;
                let region_end = start_lo + p_e as u64;
                if region_start >= self.base_ordinal {
                    let mut c_min = f64::INFINITY;
                    let mut c_max = f64::NEG_INFINITY;
                    let mut region_missing = 0u64;
                    let mut resolved = true;
                    let mut b = region_start & !(block_len - 1);
                    while b <= region_end {
                        match self.block_at(series, b) {
                            Some(blk) => {
                                c_min = c_min.min(blk.min);
                                c_max = c_max.max(blk.max);
                                region_missing += u64::from(blk.missing);
                            }
                            None => {
                                resolved = false;
                                break;
                            }
                        }
                        b += block_len;
                    }
                    if resolved {
                        let chunk_len = (p_e - p_s + 1) as u64;
                        let q_missing =
                            u64::from(qref.prefix_missing[p_e + 1] - qref.prefix_missing[p_s]);
                        let uncertain = q_missing + region_missing;
                        if chunk_len > uncertain {
                            let (q_min, q_max) = qref.range_min_max(p_s, p_e);
                            let g = (q_min - c_max).max(c_min - q_max).max(0.0);
                            if g > 0.0 && g.is_finite() {
                                sum += g * g * (chunk_len - uncertain) as f64;
                            }
                        }
                    }
                }
                p_s = p_e + 1;
            }
        }
        sum
    }

    /// Gap-aware lower bound on the *squared, unscaled* L2 dissimilarity of
    /// the candidate anchored `lag` ticks in the past, over the given
    /// reference series with pattern length `l` — i.e. a lower bound on the
    /// `sum_sq` of `l2_components`, hence (since the Definition 2 rescale
    /// factor is ≥ 1) on `D²[lag]`.
    ///
    /// The second return is `true` when the index *proves* the candidate
    /// range contains a missing reference slot (a block fully inside the
    /// range with `missing > 0`): in strict mode (`allow_missing = false`)
    /// such a candidate has `D = +∞` exactly and needs no exact evaluation.
    ///
    /// Returns `(0.0, false)` — the vacuous bound — whenever a range is not
    /// fully resolvable, so the caller never over-prunes.
    pub fn lower_bound_sq(&self, references: &[SeriesId], lag: usize, l: usize) -> (f64, bool) {
        if self.ticks_seen == 0 || l == 0 {
            return (0.0, false);
        }
        let Some(query_newest) = self.ordinal_of_age(0) else {
            return (0.0, false);
        };
        // Candidate columns pair with query columns at a constant ordinal
        // offset of exactly `lag`.
        let Some(cand_newest) = self.ordinal_of_age(lag) else {
            return (0.0, false);
        };
        let span = (l - 1) as u64;
        if cand_newest < span || query_newest < span {
            return (0.0, false);
        }
        let cand_start = cand_newest - span;
        let block_len = SIGNATURE_BLOCK_LEN as u64;

        let mut sum = 0.0_f64;
        let mut certain_missing = false;
        for (ri, &r) in references.iter().enumerate() {
            let _ = ri;
            let series = r.index();
            // Walk block-aligned segments of the candidate range.
            let mut seg_start = cand_start;
            while seg_start <= cand_newest {
                let block_base = seg_start - (seg_start % block_len);
                let seg_end = (block_base + block_len - 1).min(cand_newest);
                let seg_len = seg_end - seg_start + 1;
                let Some(cand_block) = self.block_at(series, seg_start) else {
                    seg_start = seg_end + 1;
                    continue;
                };
                if cand_block.missing > 0
                    && seg_start == block_base
                    && seg_end == block_base + block_len - 1
                {
                    // The whole block lies inside the candidate range, so its
                    // missing slots are provably part of the candidate.
                    certain_missing = true;
                }
                // The paired query segment spans at most two query blocks;
                // union their envelopes and missing counts (conservative).
                let q_start = seg_start + lag as u64;
                let q_end = seg_end + lag as u64;
                let Some(q_first) = self.block_at(series, q_start) else {
                    seg_start = seg_end + 1;
                    continue;
                };
                let mut q_env = *q_first;
                let q_last_base = q_end - (q_end % block_len);
                if q_last_base > q_start {
                    let Some(q_second) = self.block_at(series, q_end) else {
                        seg_start = seg_end + 1;
                        continue;
                    };
                    q_env.min = q_env.min.min(q_second.min);
                    q_env.max = q_env.max.max(q_second.max);
                    q_env.missing += q_second.missing;
                }
                let uncertain = (cand_block.missing + q_env.missing) as u64;
                if seg_len > uncertain {
                    let n_certain = (seg_len - uncertain) as f64;
                    let g = envelope_gap(cand_block, &q_env);
                    if g > 0.0 && g.is_finite() {
                        sum += g * g * n_certain;
                    }
                }
                seg_start = seg_end + 1;
            }
        }
        (sum, certain_missing)
    }

    /// Rebuilds the index from the current window contents (tight envelopes,
    /// exact missing counts).  Used when attaching an index to a window that
    /// already has history — e.g. a snapshot decoded by an older writer —
    /// and by tests as the reference state.
    pub fn rebuild(&mut self, window: &StreamingWindow) -> Result<(), TsError> {
        if window.width() != self.width || window.length() != self.window_length {
            return Err(TsError::invalid(
                "window",
                "signature index was built for a different window shape",
            ));
        }
        let block_len = SIGNATURE_BLOCK_LEN as u64;
        self.ticks_seen = window.ticks_seen() as u64;
        let filled = window.filled() as u64;
        let oldest_ordinal = self.ticks_seen - filled;
        self.base_ordinal = oldest_ordinal - (oldest_ordinal % block_len);
        let block_count = if filled == 0 {
            0
        } else {
            ((self.ticks_seen - 1 - self.base_ordinal) / block_len + 1) as usize
        };
        for (s, series) in self.blocks.iter_mut().enumerate() {
            series.clear();
            series.resize(block_count, BlockSummary::empty());
            for (b, block) in series.iter_mut().enumerate() {
                let block_start = self.base_ordinal + b as u64 * block_len;
                for ordinal in block_start..(block_start + block_len).min(self.ticks_seen) {
                    if ordinal < oldest_ordinal {
                        continue;
                    }
                    let age = (self.ticks_seen - 1 - ordinal) as usize;
                    block.absorb(window.value_recent(SeriesId(s as u32), age)?);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkcm_timeseries::{StreamTick, Timestamp};

    fn push(w: &mut StreamingWindow, ix: &mut SignatureIndex, t: i64, values: Vec<Option<f64>>) {
        w.push_tick(&StreamTick::new(Timestamp::new(t), values.clone()))
            .unwrap();
        ix.on_push(&values).unwrap();
    }

    #[test]
    fn maintained_index_envelopes_contain_the_rebuilt_ones() {
        // While no tick has aged out of a block, maintained == rebuilt
        // exactly; once a block partially retires, the maintained block must
        // stay a *superset* of the tight rebuilt one (values that left the
        // window linger in the envelope until the whole block retires) — the
        // direction admissibility needs.
        let width = 2;
        let cap = 50;
        let mut w = StreamingWindow::new(width, cap);
        let mut ix = SignatureIndex::new(width, cap).unwrap();
        for t in 0..(3 * cap as i64) {
            let v0 = if t % 7 == 3 {
                None
            } else {
                Some((t as f64 * 0.3).sin())
            };
            push(&mut w, &mut ix, t, vec![v0, Some(t as f64)]);
            let mut fresh = SignatureIndex::new(width, cap).unwrap();
            fresh.rebuild(&w).unwrap();
            if (t as usize) < cap {
                assert_eq!(ix, fresh, "tick {t}");
            } else {
                assert_eq!(ix.base_ordinal, fresh.base_ordinal, "tick {t}");
                assert_eq!(ix.ticks_seen, fresh.ticks_seen, "tick {t}");
                for (ms, rs) in ix.blocks.iter().zip(fresh.blocks.iter()) {
                    assert_eq!(ms.len(), rs.len(), "tick {t}");
                    for (m, r) in ms.iter().zip(rs.iter()) {
                        assert!(m.min <= r.min, "tick {t}");
                        assert!(m.max >= r.max, "tick {t}");
                        assert!(m.missing >= r.missing, "tick {t}");
                    }
                }
            }
        }
    }

    #[test]
    fn write_back_widens_and_clears_missing() {
        let mut w = StreamingWindow::new(1, 32);
        let mut ix = SignatureIndex::new(1, 32).unwrap();
        for t in 0..20i64 {
            let v = if t == 19 { None } else { Some(1.0) };
            push(&mut w, &mut ix, t, vec![v]);
        }
        let before = ix.block_at(0, 19).unwrap().missing;
        assert!(before > 0);
        w.write_imputed(SeriesId(0), 0, 5.0).unwrap();
        ix.on_write(SeriesId(0), 0, 5.0, true);
        let block = ix.block_at(0, 19).unwrap();
        assert_eq!(block.missing, before - 1);
        assert_eq!(block.max, 5.0);
        // Envelope only widens: a rebuilt index would have the same bounds
        // here, but writing a value *inside* the envelope must not shrink it.
        ix.on_write(SeriesId(0), 1, 2.0, false);
        assert_eq!(ix.block_at(0, 19).unwrap().max, 5.0);
    }

    #[test]
    fn lower_bound_is_zero_for_identical_ranges() {
        let mut w = StreamingWindow::new(1, 64);
        let mut ix = SignatureIndex::new(1, 64).unwrap();
        for t in 0..64i64 {
            push(&mut w, &mut ix, t, vec![Some(((t % 8) as f64) * 0.5)]);
        }
        // Period-8 signal: candidate at lag 8 is identical to the query.
        let (lb, miss) = ix.lower_bound_sq(&[SeriesId(0)], 8, 8);
        assert_eq!(lb, 0.0);
        assert!(!miss);
    }

    #[test]
    fn lower_bound_separates_disjoint_envelopes() {
        let mut w = StreamingWindow::new(1, 64);
        let mut ix = SignatureIndex::new(1, 64).unwrap();
        // First 32 ticks near 0, last 32 near 100.
        for t in 0..64i64 {
            let v = if t < 32 { t as f64 * 0.01 } else { 100.0 };
            push(&mut w, &mut ix, t, vec![Some(v)]);
        }
        let l = 8usize;
        let (lb, _) = ix.lower_bound_sq(&[SeriesId(0)], 40, l);
        // Gap is at least 100 − 0.32 per pair, 8 pairs.
        assert!(lb > 8.0 * 99.0 * 99.0, "lb = {lb}");
    }

    #[test]
    fn certain_missing_needs_a_fully_covered_block() {
        let cap = 64;
        let mut w = StreamingWindow::new(1, cap);
        let mut ix = SignatureIndex::new(1, cap).unwrap();
        let b = SIGNATURE_BLOCK_LEN as i64;
        for t in 0..(3 * b) {
            let v = if t == b + 2 { None } else { Some(1.0) };
            push(&mut w, &mut ix, t, vec![Some(1.0).filter(|_| v.is_some())]);
        }
        // Candidate covering the full middle block sees the missing slot.
        let l = SIGNATURE_BLOCK_LEN as usize;
        let lag = l; // candidate = middle block exactly
        let (_, certain) = ix.lower_bound_sq(&[SeriesId(0)], lag, l);
        assert!(certain);
        // A short candidate that only clips the block cannot be sure.
        let (_, maybe) = ix.lower_bound_sq(&[SeriesId(0)], l + 10, 4);
        assert!(!maybe);
    }

    #[test]
    fn retired_blocks_are_dropped() {
        let cap = 40;
        let mut w = StreamingWindow::new(1, cap);
        let mut ix = SignatureIndex::new(1, cap).unwrap();
        for t in 0..(10 * cap as i64) {
            push(&mut w, &mut ix, t, vec![Some(t as f64)]);
        }
        let b = SIGNATURE_BLOCK_LEN as usize;
        // At most ceil(L/B) + 1 blocks are ever live.
        assert!(ix.blocks[0].len() <= cap.div_ceil(b) + 1);
        // The oldest retained block still covers the oldest window slot.
        assert!(ix.base_ordinal <= (ix.ticks_seen - cap as u64));
    }

    /// Exact unscaled `sum_sq` of the candidate at `lag`, for checking the
    /// run bound's admissibility against ground truth.
    fn exact_sum_sq(w: &StreamingWindow, lag: usize, l: usize) -> Option<f64> {
        let mut sum = 0.0;
        for col in 0..l {
            let q = w.value_recent(SeriesId(0), l - 1 - col).unwrap();
            let c = w.value_recent(SeriesId(0), lag + l - 1 - col).unwrap();
            match (q, c) {
                (Some(q), Some(c)) => sum += (q - c) * (q - c),
                _ => return None,
            }
        }
        Some(sum)
    }

    #[test]
    fn run_bound_is_admissible_for_every_lag_in_the_run() {
        let cap = 128;
        let mut w = StreamingWindow::new(1, cap);
        let mut ix = SignatureIndex::new(1, cap).unwrap();
        for t in 0..(cap as i64 + 40) {
            let v = if t % 11 == 5 {
                None
            } else {
                Some((t as f64 * 0.37).sin() * 3.0 + if t % 29 == 0 { 50.0 } else { 0.0 })
            };
            push(&mut w, &mut ix, t, vec![v]);
        }
        let l = 16usize;
        let rows: Vec<Option<f64>> = (0..l)
            .map(|col| w.value_recent(SeriesId(0), l - 1 - col).unwrap())
            .collect();
        let query = SignatureQuery::new(&[&rows]);
        for run_len in [1usize, 4, 16, 32] {
            let mut lag_lo = l;
            while lag_lo + run_len - 1 <= cap - l {
                let rb =
                    ix.run_lower_bound_sq_with_query(&[SeriesId(0)], lag_lo, run_len, l, &query);
                for lag in lag_lo..lag_lo + run_len {
                    // Admissible vs the exact sum, and never above the
                    // per-lag level-0 bound's target either.
                    if let Some(exact) = exact_sum_sq(&w, lag, l) {
                        assert!(
                            rb <= exact + 1e-9,
                            "run [{lag_lo}, +{run_len}) lag {lag}: {rb} > {exact}"
                        );
                    }
                }
                lag_lo += run_len;
            }
        }
    }

    #[test]
    fn run_bound_separates_a_level_shifted_region() {
        let cap = 96;
        let mut w = StreamingWindow::new(1, cap);
        let mut ix = SignatureIndex::new(1, cap).unwrap();
        // Old half near 100, recent half (query region) near 0.
        for t in 0..cap as i64 {
            let v = if t < 48 {
                100.0 + (t % 3) as f64
            } else {
                (t % 3) as f64 * 0.1
            };
            push(&mut w, &mut ix, t, vec![Some(v)]);
        }
        let l = 16usize;
        let rows: Vec<Option<f64>> = (0..l)
            .map(|col| w.value_recent(SeriesId(0), l - 1 - col).unwrap())
            .collect();
        let query = SignatureQuery::new(&[&rows]);
        // A run wholly inside the far (level-100) region must get a large
        // positive bound.
        let rb = ix.run_lower_bound_sq_with_query(&[SeriesId(0)], 64, 8, l, &query);
        assert!(rb > 16.0 * 90.0 * 90.0, "rb = {rb}");
        // A run overlapping the query-like recent region must stay vacuous
        // or tiny (the union envelope includes near-query values).
        let rb_near = ix.run_lower_bound_sq_with_query(&[SeriesId(0)], l, 8, l, &query);
        assert!(rb_near <= rb, "near {rb_near} vs far {rb}");
    }

    #[test]
    fn run_bound_is_vacuous_when_the_region_is_unresolvable() {
        let mut w = StreamingWindow::new(1, 32);
        let mut ix = SignatureIndex::new(1, 32).unwrap();
        for t in 0..8i64 {
            push(&mut w, &mut ix, t, vec![Some(t as f64)]);
        }
        let rows: Vec<Option<f64>> = vec![Some(0.0); 4];
        let query = SignatureQuery::new(&[&rows]);
        // Not enough history for lag 30 — must not invent a bound.
        assert_eq!(
            ix.run_lower_bound_sq_with_query(&[SeriesId(0)], 30, 4, 4, &query),
            0.0
        );
        assert_eq!(
            ix.run_lower_bound_sq_with_query(&[SeriesId(0)], 4, 0, 4, &query),
            0.0
        );
    }

    #[test]
    fn constructor_and_width_mismatch_errors() {
        assert!(SignatureIndex::new(0, 8).is_err());
        assert!(SignatureIndex::new(1, 0).is_err());
        let mut ix = SignatureIndex::new(2, 8).unwrap();
        assert!(ix.on_push(&[Some(1.0)]).is_err());
        assert_eq!(ix.width(), 2);
    }
}
