//! [`Snapshot`] implementations for the engine layer, plus the WAL entry
//! type the runtime logs per processed tick.
//!
//! A [`crate::engine::TkcmEngine`] snapshot is the *complete* engine state:
//! configuration, the streaming window (value rings, provenance rings,
//! timestamp ring), the reference catalog, the accumulated phase breakdown
//! and every live incremental dissimilarity maintainer with its bit-exact
//! running sums.  Loading it back and replaying the logged ticks since the
//! snapshot ([`WalEntry`], applied through
//! [`crate::engine::TkcmEngine::apply_wal_entry`]) reproduces an engine that
//! is bit-identical to one that never crashed — the recovery-equivalence
//! property the runtime's tests pin down.
//!
//! Engines running a *custom* dissimilarity measure cannot be snapshotted:
//! the decoder reconstructs the imputer from the configuration alone, which
//! always yields the paper's L2 measure, so encoding any other measure is
//! refused instead of silently recovering with different semantics.

use std::time::Duration;

use tkcm_store::{Decoder, Encoder, Snapshot, StoreError};
use tkcm_timeseries::{Catalog, SeriesId, StreamTick, StreamingWindow, Timestamp};

use crate::config::{AnchorAggregation, TkcmConfig};
use crate::diagnostics::PhaseBreakdown;
use crate::dissimilarity::{Dissimilarity, L2Distance};
use crate::engine::{Maintainer, Shortlist, TkcmEngine};
use crate::imputer::{PruneStats, TkcmImputer};
use crate::incremental::{IncrementalDissimilarity, ShortlistEntry, ShortlistMaintainer};
use crate::selection::SelectionStrategy;
use crate::signature::{BlockSummary, SignatureIndex, SIGNATURE_BLOCK_LEN};

/// One write-back logged alongside the tick that produced it: the imputed
/// series, the reference set that served the imputation (needed to recreate
/// the maintainer with the original timing) and the imputed value.
#[derive(Clone, Debug, PartialEq)]
pub struct WalWriteBack {
    /// The series that was imputed.
    pub series: SeriesId,
    /// The reference set the imputation ran with, in selection order.
    pub references: Vec<SeriesId>,
    /// The imputed value written into the window.
    pub value: f64,
}

/// One write-ahead-log record: a processed tick plus every write-back it
/// produced, in commit order.  Replaying the record through
/// [`crate::engine::TkcmEngine::apply_wal_entry`] reproduces the engine
/// state transition without re-running pattern extraction/selection.
#[derive(Clone, Debug, PartialEq)]
pub struct WalEntry {
    /// The tick exactly as the engine received it.
    pub tick: StreamTick,
    /// The write-backs the engine committed at this tick, in order.
    pub write_backs: Vec<WalWriteBack>,
}

impl WalEntry {
    /// Builds the log record for a processed tick from the outcome the
    /// engine returned for it.
    pub fn from_outcome(tick: &StreamTick, outcome: &crate::engine::EngineOutcome) -> WalEntry {
        WalEntry {
            tick: tick.clone(),
            write_backs: outcome
                .imputations
                .iter()
                .map(|i| WalWriteBack {
                    series: i.series,
                    references: i.detail.references.clone(),
                    value: i.value,
                })
                .collect(),
        }
    }
}

impl Snapshot for WalWriteBack {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        self.series.write_into(enc)?;
        self.references.write_into(enc)?;
        enc.f64(self.value);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(WalWriteBack {
            series: SeriesId::read_from(dec)?,
            references: Vec::read_from(dec)?,
            value: dec.f64()?,
        })
    }
}

impl Snapshot for WalEntry {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        self.tick.write_into(enc)?;
        self.write_backs.write_into(enc)
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(WalEntry {
            tick: StreamTick::read_from(dec)?,
            write_backs: Vec::read_from(dec)?,
        })
    }
}

impl Snapshot for AnchorAggregation {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.u8(match self {
            AnchorAggregation::Mean => 0,
            AnchorAggregation::InverseDistanceWeighted => 1,
        });
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match dec.u8()? {
            0 => Ok(AnchorAggregation::Mean),
            1 => Ok(AnchorAggregation::InverseDistanceWeighted),
            other => Err(StoreError::corrupt(format!(
                "invalid anchor aggregation tag {other}"
            ))),
        }
    }
}

impl Snapshot for SelectionStrategy {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.u8(match self {
            SelectionStrategy::DynamicProgramming => 0,
            SelectionStrategy::Greedy => 1,
            SelectionStrategy::OverlappingTopK => 2,
        });
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        match dec.u8()? {
            0 => Ok(SelectionStrategy::DynamicProgramming),
            1 => Ok(SelectionStrategy::Greedy),
            2 => Ok(SelectionStrategy::OverlappingTopK),
            other => Err(StoreError::corrupt(format!(
                "invalid selection strategy tag {other}"
            ))),
        }
    }
}

impl Snapshot for TkcmConfig {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.usize(self.window_length);
        enc.usize(self.pattern_length);
        enc.usize(self.anchor_count);
        enc.usize(self.reference_count);
        self.aggregation.write_into(enc)?;
        self.selection.write_into(enc)?;
        enc.bool(self.allow_missing_in_patterns);
        enc.bool(self.incremental);
        enc.bool(self.pruning);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let config = TkcmConfig {
            window_length: dec.usize()?,
            pattern_length: dec.usize()?,
            anchor_count: dec.usize()?,
            reference_count: dec.usize()?,
            aggregation: AnchorAggregation::read_from(dec)?,
            selection: SelectionStrategy::read_from(dec)?,
            allow_missing_in_patterns: dec.bool()?,
            incremental: dec.bool()?,
            pruning: dec.bool()?,
        };
        config
            .validate()
            .map_err(|e| StoreError::invalid(e.to_string()))?;
        Ok(config)
    }
}

fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Snapshot for PhaseBreakdown {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.u64(duration_nanos(self.extraction));
        enc.u64(duration_nanos(self.selection));
        enc.u64(duration_nanos(self.imputation));
        enc.u64(duration_nanos(self.maintenance));
        enc.usize(self.imputations);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(PhaseBreakdown {
            extraction: Duration::from_nanos(dec.u64()?),
            selection: Duration::from_nanos(dec.u64()?),
            imputation: Duration::from_nanos(dec.u64()?),
            maintenance: Duration::from_nanos(dec.u64()?),
            imputations: dec.usize()?,
        })
    }
}

impl Snapshot for IncrementalDissimilarity {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        self.references.write_into(enc)?;
        enc.usize(self.pattern_length);
        enc.usize(self.window_length);
        enc.bool(self.allow_missing);
        self.sums.write_into(enc)?;
        enc.usize(self.counts.len());
        for c in &self.counts {
            enc.u32(*c);
        }
        self.prev_oldest.write_into(enc)?;
        match self.last_time {
            Some(t) => {
                enc.bool(true);
                t.write_into(enc)?;
            }
            None => enc.bool(false),
        }
        enc.usize(self.ticks_since_rebuild);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let references: Vec<SeriesId> = Vec::read_from(dec)?;
        let pattern_length = dec.usize()?;
        let window_length = dec.usize()?;
        let allow_missing = dec.bool()?;
        let sums: Vec<f64> = Vec::read_from(dec)?;
        let count_len = dec.seq_len()?;
        let mut counts = Vec::with_capacity(count_len);
        for _ in 0..count_len {
            counts.push(dec.u32()?);
        }
        let prev_oldest: Vec<Option<f64>> = Vec::read_from(dec)?;
        let last_time = if dec.bool()? {
            Some(Timestamp::read_from(dec)?)
        } else {
            None
        };
        let ticks_since_rebuild = dec.usize()?;

        // `window_length / 2 < pattern_length` is the overflow-safe spelling
        // of `window_length < 2 * pattern_length` — decoded dimensions are
        // untrusted and must not be fed into unchecked arithmetic.
        if references.is_empty()
            || pattern_length == 0
            || window_length / 2 < pattern_length
            || sums.len() != window_length - 2 * pattern_length + 1
            || counts.len() != sums.len()
            || prev_oldest.len() != references.len()
        {
            return Err(StoreError::invalid(
                "incremental dissimilarity snapshot dimensions are inconsistent",
            ));
        }
        Ok(IncrementalDissimilarity {
            references,
            pattern_length,
            window_length,
            allow_missing,
            sums,
            counts,
            prev_oldest,
            last_time,
            ticks_since_rebuild,
        })
    }
}

impl Snapshot for ShortlistMaintainer {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        self.references.write_into(enc)?;
        enc.usize(self.pattern_length);
        enc.usize(self.window_length);
        enc.bool(self.allow_missing);
        // BTreeMap iteration is ascending by lag, so the encoding (and the
        // snapshot fingerprint) is deterministic.
        enc.usize(self.entries.len());
        for (&lag, entry) in &self.entries {
            enc.u32(lag);
            enc.f64(entry.sum_sq);
            enc.f64(entry.err);
            enc.u32(entry.observed);
            enc.u64(entry.last_hit);
        }
        self.prev_oldest.write_into(enc)?;
        match self.last_time {
            Some(t) => {
                enc.bool(true);
                t.write_into(enc)?;
            }
            None => enc.bool(false),
        }
        enc.u64(self.ticks);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let references: Vec<SeriesId> = Vec::read_from(dec)?;
        let pattern_length = dec.usize()?;
        let window_length = dec.usize()?;
        let allow_missing = dec.bool()?;
        // Same overflow-safe dimension check as the dense maintainer:
        // decoded sizes are untrusted.
        if references.is_empty() || pattern_length == 0 || window_length / 2 < pattern_length {
            return Err(StoreError::invalid(
                "shortlist maintainer snapshot dimensions are inconsistent",
            ));
        }
        let entry_count = dec.seq_len()?;
        let mut entries = std::collections::BTreeMap::new();
        let lag_min = u64::try_from(pattern_length)
            .map_err(|_| StoreError::invalid("shortlist pattern length overflows u64"))?;
        let lag_max = u64::try_from(window_length - pattern_length)
            .map_err(|_| StoreError::invalid("shortlist window length overflows u64"))?;
        let total_pairs = u64::try_from(references.len().saturating_mul(pattern_length))
            .map_err(|_| StoreError::invalid("shortlist pair count overflows u64"))?;
        for _ in 0..entry_count {
            let lag = dec.u32()?;
            let sum_sq = dec.f64()?;
            let err = dec.f64()?;
            let observed = dec.u32()?;
            let last_hit = dec.u64()?;
            if u64::from(lag) < lag_min || u64::from(lag) > lag_max {
                return Err(StoreError::invalid(format!(
                    "shortlist entry lag {lag} is outside the candidate range"
                )));
            }
            // A NaN sum or a negative/NaN radius would corrupt every bound
            // derived from the entry; refuse rather than carry it.
            if sum_sq.is_nan() || err.is_nan() || err < 0.0 {
                return Err(StoreError::invalid(
                    "shortlist entry carries a NaN sum or invalid error radius",
                ));
            }
            if u64::from(observed) > total_pairs {
                return Err(StoreError::invalid(format!(
                    "shortlist entry observed count {observed} exceeds the pair total"
                )));
            }
            if entries
                .insert(
                    lag,
                    ShortlistEntry {
                        sum_sq,
                        err,
                        observed,
                        last_hit,
                    },
                )
                .is_some()
            {
                return Err(StoreError::invalid(format!(
                    "duplicate shortlist entry for lag {lag}"
                )));
            }
        }
        let prev_oldest: Vec<Option<f64>> = Vec::read_from(dec)?;
        let last_time = if dec.bool()? {
            Some(Timestamp::read_from(dec)?)
        } else {
            None
        };
        let ticks = dec.u64()?;
        if prev_oldest.len() != references.len() {
            return Err(StoreError::invalid(
                "shortlist maintainer snapshot dimensions are inconsistent",
            ));
        }
        for entry in entries.values() {
            if entry.last_hit > ticks {
                return Err(StoreError::invalid(
                    "shortlist entry last-hit tick is ahead of the maintainer clock",
                ));
            }
        }
        Ok(ShortlistMaintainer {
            references,
            pattern_length,
            window_length,
            allow_missing,
            entries,
            prev_oldest,
            last_time,
            ticks,
        })
    }
}

impl Snapshot for PruneStats {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.usize(self.candidates);
        enc.usize(self.shortlisted);
        enc.usize(self.pruned);
        enc.usize(self.level1_skipped);
        enc.usize(self.maintained_pruned);
        enc.usize(self.maintained_lags);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        Ok(PruneStats {
            candidates: dec.usize()?,
            shortlisted: dec.usize()?,
            pruned: dec.usize()?,
            level1_skipped: dec.usize()?,
            maintained_pruned: dec.usize()?,
            maintained_lags: dec.usize()?,
        })
    }
}

impl Snapshot for BlockSummary {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        enc.f64(self.min);
        enc.f64(self.max);
        enc.u32(self.missing);
        enc.f64(self.sum);
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        // ±∞ round-trip fine through the to_bits encoding; NaN envelopes
        // would poison every gap comparison, so they are refused.  A NaN
        // *sum* is legitimate — it is the poisoned state an observed-slot
        // overwrite leaves behind (the mean bound is skipped for it).
        let min = dec.f64()?;
        let max = dec.f64()?;
        let missing = dec.u32()?;
        let sum = dec.f64()?;
        if min.is_nan() || max.is_nan() {
            return Err(StoreError::invalid("NaN in a block summary envelope"));
        }
        if u64::from(missing) > u64::from(SIGNATURE_BLOCK_LEN) {
            return Err(StoreError::invalid(format!(
                "block summary missing count {missing} exceeds the block length \
                 {SIGNATURE_BLOCK_LEN}"
            )));
        }
        Ok(BlockSummary {
            min,
            max,
            missing,
            sum,
        })
    }
}

impl Snapshot for SignatureIndex {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        // The block length is part of the decoded geometry: refuse to read
        // snapshots written with a different quantization than this build's
        // SIGNATURE_BLOCK_LEN rather than misalign every envelope.
        enc.u32(SIGNATURE_BLOCK_LEN);
        enc.usize(self.width);
        enc.usize(self.window_length);
        enc.u64(self.base_ordinal);
        enc.u64(self.ticks_seen);
        enc.usize(self.blocks.len());
        for series in &self.blocks {
            series.write_into(enc)?;
        }
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let block_len = dec.u32()?;
        if block_len != SIGNATURE_BLOCK_LEN {
            return Err(StoreError::invalid(format!(
                "signature index block length {block_len} does not match this \
                 build's {SIGNATURE_BLOCK_LEN}"
            )));
        }
        let width = dec.usize()?;
        let window_length = dec.usize()?;
        let base_ordinal = dec.u64()?;
        let ticks_seen = dec.u64()?;
        let series_count = dec.seq_len()?;
        if width == 0 || window_length == 0 || series_count != width {
            return Err(StoreError::invalid(
                "signature index snapshot dimensions are inconsistent",
            ));
        }
        let mut blocks = Vec::with_capacity(series_count);
        let mut block_count: Option<usize> = None;
        for _ in 0..series_count {
            let series: Vec<BlockSummary> = Vec::read_from(dec)?;
            match block_count {
                None => block_count = Some(series.len()),
                Some(n) if n != series.len() => {
                    return Err(StoreError::invalid(
                        "signature index series have differing block counts",
                    ));
                }
                Some(_) => {}
            }
            blocks.push(series);
        }
        if base_ordinal % u64::from(SIGNATURE_BLOCK_LEN) != 0 || base_ordinal > ticks_seen {
            return Err(StoreError::invalid(
                "signature index base ordinal is not block-aligned inside the stream",
            ));
        }
        Ok(SignatureIndex {
            width,
            window_length,
            base_ordinal,
            ticks_seen,
            blocks,
        })
    }
}

impl Snapshot for TkcmEngine {
    fn write_into(&self, enc: &mut Encoder) -> Result<(), StoreError> {
        if self.imputer.dissimilarity_name() != L2Distance.name() {
            return Err(StoreError::invalid(format!(
                "engines with a custom dissimilarity measure ({}) cannot be snapshotted: \
                 recovery reconstructs the imputer from the configuration, which always \
                 yields the default {} measure",
                self.imputer.dissimilarity_name(),
                L2Distance.name()
            )));
        }
        self.imputer.config().write_into(enc)?;
        self.window.write_into(enc)?;
        self.catalog.write_into(enc)?;
        self.breakdown.write_into(enc)?;
        enc.usize(self.imputation_count);
        enc.usize(self.tick_count);
        enc.usize(self.maintainers.len());
        for m in &self.maintainers {
            m.state.write_into(enc)?;
            enc.usize(m.last_used);
        }
        match &self.signatures {
            Some(index) => {
                enc.bool(true);
                index.write_into(enc)?;
            }
            None => enc.bool(false),
        }
        enc.usize(self.shortlists.len());
        for s in &self.shortlists {
            s.state.write_into(enc)?;
            enc.usize(s.last_used);
        }
        self.prune_totals.write_into(enc)?;
        Ok(())
    }

    fn read_from(dec: &mut Decoder<'_>) -> Result<Self, StoreError> {
        let config = TkcmConfig::read_from(dec)?;
        let window = StreamingWindow::read_from(dec)?;
        if window.length() != config.window_length {
            return Err(StoreError::invalid(format!(
                "window length {} does not match the configured L = {}",
                window.length(),
                config.window_length
            )));
        }
        let catalog = Catalog::read_from(dec)?;
        let breakdown = PhaseBreakdown::read_from(dec)?;
        let imputation_count = dec.usize()?;
        let tick_count = dec.usize()?;
        let maintainer_count = dec.seq_len()?;
        let mut maintainers = Vec::with_capacity(maintainer_count);
        for _ in 0..maintainer_count {
            let state = IncrementalDissimilarity::read_from(dec)?;
            let last_used = dec.usize()?;
            if state.window_length() != config.window_length {
                return Err(StoreError::invalid(
                    "maintainer window length does not match the engine configuration",
                ));
            }
            maintainers.push(Maintainer { state, last_used });
        }
        let signatures = if dec.bool()? {
            let index = SignatureIndex::read_from(dec)?;
            if index.width() != window.width() {
                return Err(StoreError::invalid(
                    "signature index width does not match the window",
                ));
            }
            if !index.is_synced(&window) {
                return Err(StoreError::invalid(
                    "signature index is not in lock-step with the window snapshot",
                ));
            }
            Some(index)
        } else {
            None
        };
        let shortlist_count = dec.seq_len()?;
        let mut shortlists = Vec::with_capacity(shortlist_count);
        for _ in 0..shortlist_count {
            let state = ShortlistMaintainer::read_from(dec)?;
            let last_used = dec.usize()?;
            if state.window_length() != config.window_length
                || state.pattern_length() != config.pattern_length
            {
                return Err(StoreError::invalid(
                    "shortlist maintainer geometry does not match the engine configuration",
                ));
            }
            shortlists.push(Shortlist { state, last_used });
        }
        let prune_totals = PruneStats::read_from(dec)?;
        let imputer = TkcmImputer::new(config).map_err(|e| StoreError::invalid(e.to_string()))?;
        // Presence of the index must agree with what this configuration
        // activates — a pruned engine recovered without its index (or the
        // converse) would silently change the imputation path.
        let expects_index = crate::engine::signature_for(window.width(), &imputer)
            .map_err(|e| StoreError::invalid(e.to_string()))?
            .is_some();
        if expects_index != signatures.is_some() {
            return Err(StoreError::invalid(
                "signature index presence does not match the engine configuration",
            ));
        }
        // Shortlist maintainers only exist on the composed path.
        let composes = expects_index && imputer.config().incremental;
        if !shortlists.is_empty() && !composes {
            return Err(StoreError::invalid(
                "shortlist maintainers present but the configuration does not compose",
            ));
        }
        let level1_run_len = crate::signature::level1_run_len(imputer.config().pattern_length);
        Ok(TkcmEngine {
            imputer,
            window,
            catalog,
            breakdown,
            imputation_count,
            tick_count,
            maintainers,
            signatures,
            shortlists,
            level1_run_len,
            prune_totals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tkcm_store::{decode_from_slice, encode_to_vec};

    fn round_trip<T: Snapshot>(value: &T) -> T {
        decode_from_slice(&encode_to_vec(value).unwrap()).unwrap()
    }

    fn small_config() -> TkcmConfig {
        TkcmConfig::builder()
            .window_length(64)
            .pattern_length(3)
            .anchor_count(2)
            .reference_count(2)
            .build()
            .unwrap()
    }

    fn sine(t: usize, shift: f64) -> f64 {
        ((t as f64 - shift) / 16.0 * std::f64::consts::TAU).sin()
    }

    fn run_engine(ticks: usize) -> TkcmEngine {
        let width = 3;
        let mut engine =
            TkcmEngine::new(width, small_config(), Catalog::ring_neighbours(width)).unwrap();
        for t in 0..ticks {
            let missing = t > 40 && t % 7 == 0;
            let s0 = if missing { None } else { Some(sine(t, 0.0)) };
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, Some(sine(t, 3.0)), Some(sine(t, 8.0))],
            );
            engine.process_tick(&tick).unwrap();
        }
        engine
    }

    #[test]
    fn config_round_trips_and_validates() {
        let c = small_config();
        assert_eq!(round_trip(&c), c);
        // An invalid decoded configuration is rejected (L < (k+1)*l).
        let mut broken = c.clone();
        broken.window_length = 4;
        let mut enc = Encoder::new();
        // Bypass encode-side validation by writing fields manually.
        enc.usize(broken.window_length);
        enc.usize(broken.pattern_length);
        enc.usize(broken.anchor_count);
        enc.usize(broken.reference_count);
        broken.aggregation.write_into(&mut enc).unwrap();
        broken.selection.write_into(&mut enc).unwrap();
        enc.bool(broken.allow_missing_in_patterns);
        enc.bool(broken.incremental);
        enc.bool(broken.pruning);
        assert!(decode_from_slice::<TkcmConfig>(&enc.into_bytes()).is_err());
    }

    #[test]
    fn breakdown_round_trips() {
        let b = PhaseBreakdown {
            extraction: Duration::from_micros(12),
            selection: Duration::from_nanos(987),
            imputation: Duration::from_millis(1),
            maintenance: Duration::from_nanos(1),
            imputations: 17,
        };
        assert_eq!(round_trip(&b), b);
    }

    #[test]
    fn wal_entry_round_trips() {
        let entry = WalEntry {
            tick: StreamTick::new(Timestamp::new(42), vec![None, Some(1.25)]),
            write_backs: vec![WalWriteBack {
                series: SeriesId(0),
                references: vec![SeriesId(1)],
                value: 0.5,
            }],
        };
        assert_eq!(round_trip(&entry), entry);
    }

    #[test]
    fn engine_snapshot_restores_bit_identical_behaviour() {
        // Run an engine through imputations (live maintainers), snapshot it,
        // restore, and drive both with identical further ticks: outcomes and
        // window contents must match bit for bit.
        let mut original = run_engine(120);
        let bytes = encode_to_vec(&original).unwrap();
        let mut restored: TkcmEngine = decode_from_slice(&bytes).unwrap();
        assert_eq!(restored.ticks_processed(), original.ticks_processed());
        assert_eq!(
            restored.imputations_performed(),
            original.imputations_performed()
        );
        assert_eq!(restored.maintainer_count(), original.maintainer_count());

        for t in 120..200usize {
            let missing = t % 5 == 0;
            let s0 = if missing { None } else { Some(sine(t, 0.0)) };
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, Some(sine(t, 3.0)), Some(sine(t, 8.0))],
            );
            let a = original.process_tick(&tick).unwrap();
            let b = restored.process_tick(&tick).unwrap();
            assert_eq!(a.imputations.len(), b.imputations.len(), "tick {t}");
            for (x, y) in a.imputations.iter().zip(b.imputations.iter()) {
                assert_eq!(x.series, y.series);
                assert_eq!(x.time, y.time);
                assert_eq!(
                    x.value.to_bits(),
                    y.value.to_bits(),
                    "tick {t}: imputed values diverged"
                );
                assert_eq!(x.detail.anchors, y.detail.anchors);
            }
            assert_eq!(a.skipped, b.skipped);
        }
    }

    #[test]
    fn signature_index_round_trips_and_rejects_corruption() {
        // Build a live index via an engine run; it must round-trip bit-exactly
        // (including envelopes widened by write-backs).
        let engine = run_engine(120);
        let index = engine.signatures.clone().expect("default config prunes");
        assert_eq!(round_trip(&index), index);

        // A foreign block length is refused instead of misreading geometry.
        let mut enc = Encoder::new();
        enc.u32(SIGNATURE_BLOCK_LEN + 1);
        enc.usize(1);
        enc.usize(64);
        enc.u64(0);
        enc.u64(0);
        enc.usize(1);
        let empty: Vec<BlockSummary> = Vec::new();
        empty.write_into(&mut enc).unwrap();
        assert!(decode_from_slice::<SignatureIndex>(&enc.into_bytes()).is_err());

        // A NaN envelope is refused.
        let mut enc = Encoder::new();
        enc.f64(f64::NAN);
        enc.f64(1.0);
        enc.u32(0);
        assert!(decode_from_slice::<BlockSummary>(&enc.into_bytes()).is_err());
    }

    #[test]
    fn shortlist_maintainer_round_trips_and_rejects_corruption() {
        // The default configuration composes, so a driven engine carries
        // live shortlist maintainers with seeded entries.
        let engine = run_engine(120);
        assert!(engine.is_composed());
        assert!(engine.shortlist_count() > 0);
        let state = &engine.shortlists[0].state;
        assert!(state.maintained_lags() > 0, "entries should have seeded");
        let restored = round_trip(state);
        // No PartialEq on the maintainer; the Debug form covers every field
        // including the per-entry bits.
        assert_eq!(format!("{restored:?}"), format!("{state:?}"));

        // An entry lag outside the candidate range is refused.
        let mut enc = Encoder::new();
        vec![SeriesId(1)].write_into(&mut enc).unwrap();
        enc.usize(3); // l
        enc.usize(64); // L
        enc.bool(false);
        enc.usize(1);
        enc.u32(1); // lag < l
        enc.f64(0.0);
        enc.f64(0.0);
        enc.u32(0);
        enc.u64(0);
        let prev: Vec<Option<f64>> = vec![None];
        prev.write_into(&mut enc).unwrap();
        enc.bool(false);
        enc.u64(0);
        assert!(decode_from_slice::<ShortlistMaintainer>(&enc.into_bytes()).is_err());

        // A negative error radius is refused (it would inflate the bound).
        let mut enc = Encoder::new();
        vec![SeriesId(1)].write_into(&mut enc).unwrap();
        enc.usize(3);
        enc.usize(64);
        enc.bool(false);
        enc.usize(1);
        enc.u32(5);
        enc.f64(1.0);
        enc.f64(-1.0);
        enc.u32(3);
        enc.u64(0);
        let prev: Vec<Option<f64>> = vec![None];
        prev.write_into(&mut enc).unwrap();
        enc.bool(false);
        enc.u64(0);
        assert!(decode_from_slice::<ShortlistMaintainer>(&enc.into_bytes()).is_err());
    }

    #[test]
    fn prune_totals_survive_snapshot_recovery() {
        // The running prune diagnostics are part of the snapshot (format
        // v5): a recovered engine continues the totals instead of silently
        // resetting them to zero.
        let engine = run_engine(120);
        let totals = engine.prune_totals();
        assert!(
            totals.candidates > 0,
            "the driven engine pruned: {totals:?}"
        );
        let restored: TkcmEngine = round_trip(&engine);
        assert_eq!(restored.prune_totals(), totals);
    }

    #[test]
    fn custom_dissimilarity_engines_refuse_to_snapshot() {
        let imputer = TkcmImputer::with_dissimilarity(
            small_config(),
            Box::new(crate::dissimilarity::L1Distance),
        )
        .unwrap();
        let engine = TkcmEngine::with_imputer(2, imputer, Catalog::ring_neighbours(2)).unwrap();
        match encode_to_vec(&engine) {
            Err(StoreError::Invalid { message }) => assert!(message.contains("L1")),
            other => panic!("expected invalid-state error, got {other:?}"),
        }
    }

    #[test]
    fn wal_replay_reproduces_live_processing() {
        // Drive a live engine and log every tick; replay the log into a
        // snapshot taken earlier; states must agree bit for bit afterwards.
        let width = 3;
        let mut live =
            TkcmEngine::new(width, small_config(), Catalog::ring_neighbours(width)).unwrap();
        let mut snapshot_bytes = None;
        let mut log = Vec::new();
        for t in 0..160usize {
            let missing = t > 40 && t % 6 == 0;
            let s0 = if missing { None } else { Some(sine(t, 0.0)) };
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, Some(sine(t, 3.0)), Some(sine(t, 8.0))],
            );
            let outcome = live.process_tick(&tick).unwrap();
            if t >= 100 {
                log.push(WalEntry::from_outcome(&tick, &outcome));
            }
            if t == 99 {
                snapshot_bytes = Some(encode_to_vec(&live).unwrap());
            }
        }
        let mut recovered: TkcmEngine =
            decode_from_slice(snapshot_bytes.as_ref().unwrap()).unwrap();
        for entry in &log {
            assert!(recovered.apply_wal_entry(entry).unwrap());
        }
        assert_eq!(recovered.ticks_processed(), live.ticks_processed());
        assert_eq!(
            recovered.imputations_performed(),
            live.imputations_performed()
        );
        // Continue both engines and compare outcomes bit for bit.
        for t in 160..220usize {
            let missing = t % 4 == 0;
            let s0 = if missing { None } else { Some(sine(t, 0.0)) };
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, Some(sine(t, 3.0)), Some(sine(t, 8.0))],
            );
            let a = live.process_tick(&tick).unwrap();
            let b = recovered.process_tick(&tick).unwrap();
            assert_eq!(a.imputations.len(), b.imputations.len(), "tick {t}");
            for (x, y) in a.imputations.iter().zip(b.imputations.iter()) {
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "tick {t}");
            }
        }
    }

    #[test]
    fn stale_wal_entries_are_skipped() {
        let mut engine = run_engine(50);
        let stale = WalEntry {
            tick: StreamTick::new(Timestamp::new(10), vec![Some(0.0); 3]),
            write_backs: vec![],
        };
        assert!(!engine.apply_wal_entry(&stale).unwrap());
        assert_eq!(engine.ticks_processed(), 50);
    }
}
