//! # tkcm-core
//!
//! Top-k Case Matching (TKCM): continuous imputation of missing values in
//! streams of pattern-determining time series.
//!
//! This crate implements the primary contribution of the EDBT 2017 paper by
//! Wellenzohn et al.:
//!
//! 1. **Patterns** ([`pattern`]): the query pattern `P(t_n)` is a `d × l`
//!    matrix of the `l` most recent values of the `d` reference series
//!    (Definition 1).
//! 2. **Dissimilarity** ([`dissimilarity`]): the L2/Frobenius distance
//!    between two patterns (Definition 2), plus the L1 and DTW variants that
//!    the paper lists as future work.
//! 3. **Pattern selection** ([`selection`]): the dynamic-programming scheme
//!    of Section 6 that finds the `k` *non-overlapping* patterns minimising
//!    the sum of dissimilarities (Definition 3, Equation 5, Figure 8), plus a
//!    greedy variant used for ablation.
//! 4. **Imputation** ([`imputer`]): the average of the incomplete series at
//!    the selected anchor points (Definition 4, Algorithm 1).
//! 5. **Streaming engine** ([`engine`]): per-tick processing of a whole set
//!    of streams with reference selection, window maintenance and write-back
//!    of imputed values.  The engine maintains the dissimilarity array `D`
//!    *incrementally* per tick ([`incremental`], Section 6.2) — `O(d)` per
//!    candidate per tick instead of an `O(L·l·d)` recompute per imputation —
//!    with the exact recompute path kept behind `TkcmConfig::incremental =
//!    false` for cross-checking.
//! 6. **Consistency diagnostics** ([`consistency`]): the ε of the
//!    pattern-determination property (Definition 5) used in Figure 13.
//! 7. **Phase timing** ([`diagnostics`]): pattern-extraction vs
//!    pattern-selection breakdown reported in Section 7.4.
//! 8. **Candidate pruning** ([`signature`]): a block-quantized signature
//!    index over the candidate space whose gap-aware lower bounds shortlist
//!    candidates admissibly — the pruned path is bit-identical to the
//!    exhaustive one, with `TkcmConfig::pruning = false` as the opt-out.
//!    With `incremental = true` as well (the default), the **composed**
//!    path adds sparse shortlist maintainers, a level-1 run prefilter and
//!    an ascending-bound survivor sweep under a tightening per-candidate
//!    threshold — still bit-identical, several times faster than either
//!    single path at paper scale.
//!
//! ## Quick start
//!
//! ```
//! use tkcm_core::{TkcmConfig, TkcmEngine};
//! use tkcm_timeseries::{Catalog, SeriesId, StreamTick, Timestamp};
//!
//! // Two reference series pattern-determine the target series 0.
//! let mut catalog = Catalog::new();
//! catalog
//!     .set_candidates(SeriesId(0), vec![SeriesId(1), SeriesId(2)])
//!     .unwrap();
//!
//! let config = TkcmConfig::builder()
//!     .window_length(64)
//!     .pattern_length(3)
//!     .anchor_count(2)
//!     .reference_count(2)
//!     .build()
//!     .unwrap();
//!
//! let mut engine = TkcmEngine::new(3, config, catalog).unwrap();
//!
//! // Feed fully observed history, then a tick where series 0 is missing.
//! for t in 0..63i64 {
//!     let phase = t as f64 * 0.4;
//!     let tick = StreamTick::new(
//!         Timestamp::new(t),
//!         vec![Some(phase.sin()), Some(phase.cos()), Some((phase * 0.5).sin())],
//!     );
//!     engine.process_tick(&tick).unwrap();
//! }
//! let tick = StreamTick::new(
//!     Timestamp::new(63),
//!     vec![None, Some((63.0f64 * 0.4).cos()), Some((63.0f64 * 0.2).sin())],
//! );
//! let outcome = engine.process_tick(&tick).unwrap();
//! assert_eq!(outcome.imputations.len(), 1);
//! assert!(outcome.imputations[0].value.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod consistency;
pub mod diagnostics;
pub mod dissimilarity;
pub mod engine;
pub mod imputer;
pub mod incremental;
pub mod pattern;
pub mod persist;
pub mod selection;
pub mod signature;

pub use config::{TkcmConfig, TkcmConfigBuilder};
pub use consistency::{epsilon_of_anchors, ConsistencyReport};
pub use diagnostics::{PhaseBreakdown, PhaseTimer};
pub use dissimilarity::{Dissimilarity, DtwDistance, L1Distance, L2Distance};
pub use engine::{EngineOutcome, Imputation, TkcmEngine};
pub use imputer::{ImputationDetail, PruneStats, TkcmImputer};
pub use incremental::{IncrementalDissimilarity, MaintainedBound, ShortlistMaintainer};
pub use pattern::{extract_pattern, extract_pattern_at_age, extract_query_pattern, Pattern};
pub use persist::{WalEntry, WalWriteBack};
pub use selection::{select_anchors_dp, select_anchors_greedy, AnchorSelection, SelectionStrategy};
pub use signature::{
    level1_run_len, BlockSummary, SignatureIndex, SignatureQuery, SIGNATURE_BLOCK_LEN,
};
