//! Streaming TKCM engine: continuous imputation over a set of streams.
//!
//! The engine owns the streaming window, pushes every arriving tick into it,
//! and — for every series whose value is missing at the current time — runs
//! the TKCM imputer with the reference set selected from the catalog
//! (Section 3: the first `d` ranked candidates whose current value is not
//! missing).  Imputed values are written back into the window so that later
//! imputations can treat them as history, exactly as in Example 1 of the
//! paper where `r2(13:40)` is an imputed value.
//!
//! When `TkcmConfig::incremental` is on (the default) the engine also owns
//! one [`IncrementalDissimilarity`] state per active reference set and keeps
//! it in lock-step with the window: advanced after every pushed tick
//! (Section 6.2's `O(L·d)` sliding-aggregate update), patched after every
//! imputed write-back, rebuilt lazily when a new reference set first appears,
//! and evicted once no imputation has used it for a while (keeping an idle
//! state alive costs one advance per tick ≈ a rebuild every `l` ticks, so
//! idle states are dropped after `2l` unused ticks and rebuilt on demand).

use std::sync::LazyLock;
use std::time::Instant;

use tkcm_timeseries::{Catalog, SeriesId, StreamTick, StreamingWindow, Timestamp, TsError};

use crate::config::TkcmConfig;
use crate::diagnostics::PhaseBreakdown;
use crate::imputer::{ImputationDetail, PruneStats, TkcmImputer};
use crate::incremental::{IncrementalDissimilarity, ShortlistMaintainer};
use crate::signature::SignatureIndex;

/// Fleet-wide pruning totals in the global metrics registry, in the same
/// split as [`PruneStats`] (the composed-path counters — level-1 run skips,
/// maintained-bound prunes, live shortlist sizes — ride as extra paths).
/// Record-only: the imputation path never reads these back (`obs-read-only`
/// policy).
static PRUNE_TOTALS: LazyLock<[tkcm_obs::Counter; 6]> = LazyLock::new(|| {
    [
        "candidates",
        "shortlisted",
        "pruned",
        "level1_skipped",
        "maintained_pruned",
        "maintained_lags",
    ]
    .map(|path| tkcm_obs::registry().counter("tkcm_core_prune_total", &[("path", path)]))
});

/// Maintainer lifecycle counters (created / evicted), record-only.
static MAINTAINERS_CREATED: LazyLock<tkcm_obs::Counter> =
    LazyLock::new(|| tkcm_obs::registry().counter("tkcm_core_maintainer_created_total", &[]));
static MAINTAINERS_EVICTED: LazyLock<tkcm_obs::Counter> =
    LazyLock::new(|| tkcm_obs::registry().counter("tkcm_core_maintainer_evicted_total", &[]));

/// One imputation performed by the engine at a tick.
#[derive(Clone, Debug, PartialEq)]
pub struct Imputation {
    /// The series that was imputed.
    pub series: SeriesId,
    /// The time point imputed.
    pub time: Timestamp,
    /// The imputed value.
    pub value: f64,
    /// Full detail (anchors, ε, timing).
    pub detail: ImputationDetail,
}

/// Result of processing one tick.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EngineOutcome {
    /// All imputations performed at this tick (one per missing series).
    pub imputations: Vec<Imputation>,
    /// Series that were missing but could not be imputed because no reference
    /// candidate was alive (the value stays missing in the window).
    pub skipped: Vec<SeriesId>,
}

impl EngineOutcome {
    /// Convenience lookup of the imputed value of a series at this tick.
    pub fn imputed_value(&self, series: SeriesId) -> Option<f64> {
        self.imputations
            .iter()
            .find(|i| i.series == series)
            .map(|i| i.value)
    }

    /// This outcome with every per-imputation phase timing zeroed (see
    /// [`PhaseBreakdown::zeroed_for_compare`]): wall-clock durations are the
    /// one field of an outcome that legitimately differs between runs that
    /// are otherwise bit-identical, so equality assertions compare
    /// `a.timing_stripped() == b.timing_stripped()` instead of hand-zeroing
    /// the breakdowns in every test suite.
    #[must_use]
    pub fn timing_stripped(&self) -> EngineOutcome {
        let mut stripped = self.clone();
        for imputation in &mut stripped.imputations {
            imputation.detail.breakdown = imputation.detail.breakdown.zeroed_for_compare();
        }
        stripped
    }
}

/// One maintained dissimilarity state plus the tick it last served.
/// (`pub(crate)` for the snapshot codec in `persist`.)
pub(crate) struct Maintainer {
    pub(crate) state: IncrementalDissimilarity,
    pub(crate) last_used: usize,
}

/// One shortlist maintainer (composed path) plus the tick it last served.
/// (`pub(crate)` for the snapshot codec in `persist`.)
pub(crate) struct Shortlist {
    pub(crate) state: ShortlistMaintainer,
    pub(crate) last_used: usize,
}

/// Continuous TKCM imputation engine over a fixed set of streams.
pub struct TkcmEngine {
    // Fields are `pub(crate)` so the snapshot codec (`persist`) can persist
    // and restore the full engine state.
    pub(crate) imputer: TkcmImputer,
    pub(crate) window: StreamingWindow,
    pub(crate) catalog: Catalog,
    pub(crate) breakdown: PhaseBreakdown,
    pub(crate) imputation_count: usize,
    pub(crate) tick_count: usize,
    /// Incremental `D` states, one per reference set that recently served an
    /// imputation.  Empty while no imputation has been needed and on the
    /// exact-recompute path.
    pub(crate) maintainers: Vec<Maintainer>,
    /// Signature index over all series, present iff the pruned path is
    /// active ([`TkcmEngine::is_pruned`]); kept in lock-step with the window
    /// by `advance_tick`/`commit_write_back` and persisted in snapshots so a
    /// recovered engine prunes with bit-identical envelopes.
    pub(crate) signatures: Option<SignatureIndex>,
    /// Sparse shortlist maintainers, one per reference set that recently
    /// served a *composed* imputation ([`TkcmEngine::is_composed`]); kept in
    /// lock-step with the window like the dense maintainers and persisted in
    /// snapshots so a recovered engine keeps its certified bounds.
    pub(crate) shortlists: Vec<Shortlist>,
    /// Level-1 run length of the composed path, fixed at construction from
    /// config geometry ([`crate::signature::level1_run_len`] — static per
    /// run, no obs read-back).
    pub(crate) level1_run_len: usize,
    /// Running totals of the per-imputation [`PruneStats`].  Persisted in
    /// snapshots (format v5) so diagnostics survive a crash — unlike the
    /// phase wall-clock durations, these are exact event counts with no
    /// legitimate reason to reset on recovery.
    pub(crate) prune_totals: PruneStats,
}

/// Builds the signature index iff the configuration *and* the imputer admit
/// pruning: the opt-in flag, the DP sum objective the bound is admissible
/// for, and a decomposable (L2) dissimilarity.
pub(crate) fn signature_for(
    width: usize,
    imputer: &TkcmImputer,
) -> Result<Option<SignatureIndex>, TsError> {
    let config = imputer.config();
    if config.pruning
        && config.selection == crate::selection::SelectionStrategy::DynamicProgramming
        && imputer.supports_incremental()
    {
        Ok(Some(SignatureIndex::new(width, config.window_length)?))
    } else {
        Ok(None)
    }
}

impl TkcmEngine {
    /// Creates an engine for `width` streams.
    ///
    /// The engine's window length is taken from `config.window_length`.
    pub fn new(width: usize, config: TkcmConfig, catalog: Catalog) -> Result<Self, TsError> {
        config.validate()?;
        if width == 0 {
            return Err(TsError::invalid("width", "need at least one stream"));
        }
        let window = StreamingWindow::new(width, config.window_length);
        let imputer = TkcmImputer::new(config)?;
        let signatures = signature_for(width, &imputer)?;
        let level1_run_len = crate::signature::level1_run_len(imputer.config().pattern_length);
        Ok(TkcmEngine {
            imputer,
            window,
            catalog,
            breakdown: PhaseBreakdown::default(),
            imputation_count: 0,
            tick_count: 0,
            maintainers: Vec::new(),
            signatures,
            shortlists: Vec::new(),
            level1_run_len,
            prune_totals: PruneStats::default(),
        })
    }

    /// Creates an engine with a pre-built imputer (custom dissimilarity).
    pub fn with_imputer(
        width: usize,
        imputer: TkcmImputer,
        catalog: Catalog,
    ) -> Result<Self, TsError> {
        if width == 0 {
            return Err(TsError::invalid("width", "need at least one stream"));
        }
        let window = StreamingWindow::new(width, imputer.config().window_length);
        let signatures = signature_for(width, &imputer)?;
        let level1_run_len = crate::signature::level1_run_len(imputer.config().pattern_length);
        Ok(TkcmEngine {
            imputer,
            window,
            catalog,
            breakdown: PhaseBreakdown::default(),
            imputation_count: 0,
            tick_count: 0,
            maintainers: Vec::new(),
            signatures,
            shortlists: Vec::new(),
            level1_run_len,
            prune_totals: PruneStats::default(),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &TkcmConfig {
        self.imputer.config()
    }

    /// Read access to the streaming window (e.g. for inspecting history).
    pub fn window(&self) -> &StreamingWindow {
        &self.window
    }

    /// The reference catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of ticks processed so far.
    pub fn ticks_processed(&self) -> usize {
        self.tick_count
    }

    /// Number of values imputed so far.
    pub fn imputations_performed(&self) -> usize {
        self.imputation_count
    }

    /// Accumulated phase-timing breakdown over all imputations (Section 7.4),
    /// including the per-tick incremental maintenance time.
    pub fn phase_breakdown(&self) -> PhaseBreakdown {
        self.breakdown
    }

    /// Whether the engine maintains *dense* `D` aggregates incrementally
    /// (the configuration flag is on *and* the dissimilarity measure
    /// decomposes *and* pruning is not active — with pruning on, the
    /// incremental flag selects the composed path's sparse shortlist
    /// maintainers instead; see [`TkcmEngine::is_composed`]).
    pub fn is_incremental(&self) -> bool {
        self.imputer.config().incremental
            && self.imputer.supports_incremental()
            && !self.is_pruned()
    }

    /// Whether the signature-pruned imputation path is active: the
    /// `TkcmConfig::pruning` opt-in, dynamic-programming selection and a
    /// decomposable (L2) dissimilarity.
    pub fn is_pruned(&self) -> bool {
        self.signatures.is_some()
    }

    /// Whether the *composed* path — signature pruning layered with sparse
    /// shortlist maintenance — is active: both the `pruning` and
    /// `incremental` opt-ins, on an imputer that admits pruning.  This is
    /// the default dispatch (both flags default to on); `pruning` without
    /// `incremental` selects the PR-7 pruned-only path, `incremental`
    /// without `pruning` the PR-2 dense-maintainer path.
    pub fn is_composed(&self) -> bool {
        self.is_pruned() && self.imputer.config().incremental
    }

    /// The composed path's level-1 run length (candidate lags per coarse
    /// envelope bound), fixed at construction.
    pub fn level1_run_len(&self) -> usize {
        self.level1_run_len
    }

    /// Number of live shortlist maintainers (composed path; 0 otherwise).
    pub fn shortlist_count(&self) -> usize {
        self.shortlists.len()
    }

    /// Total lags currently carrying maintained shortlist entries, summed
    /// over all live shortlist maintainers.
    pub fn shortlisted_lag_count(&self) -> usize {
        self.shortlists
            .iter()
            .map(|s| s.state.maintained_lags())
            .sum()
    }

    /// Running totals of the pruning counters across all imputations so far
    /// (all zero when pruning is off).  `pruned / candidates` is the
    /// `pruned_fraction` the benchmarks report.
    pub fn prune_totals(&self) -> PruneStats {
        self.prune_totals
    }

    /// Number of live incremental `D` states (one per recently used
    /// reference set; 0 on the exact path or before the first imputation).
    pub fn maintainer_count(&self) -> usize {
        self.maintainers.len()
    }

    /// Ticks an incremental state may go unused before it is evicted.  A
    /// rebuild costs about `l` advances, so holding an idle state longer
    /// than `O(l)` ticks is more expensive than rebuilding on demand; `2l`
    /// adds hysteresis for intermittent gaps.
    fn maintainer_ttl(&self) -> usize {
        2 * self.imputer.config().pattern_length
    }

    /// Index of the maintainer for `references`, creating (and rebuilding)
    /// one if this reference set has no live state yet.
    fn maintainer_for(&mut self, references: &[SeriesId]) -> Result<usize, TsError> {
        if let Some(idx) = self
            .maintainers
            .iter()
            .position(|m| m.state.references() == references)
        {
            return Ok(idx);
        }
        let config = self.imputer.config();
        let mut state = IncrementalDissimilarity::new(
            references.to_vec(),
            config.pattern_length,
            config.window_length,
            config.allow_missing_in_patterns,
        )?;
        state.rebuild(&self.window)?;
        self.maintainers.push(Maintainer {
            state,
            last_used: self.tick_count,
        });
        MAINTAINERS_CREATED.inc();
        Ok(self.maintainers.len() - 1)
    }

    /// Index of the shortlist maintainer for `references`, creating one
    /// (synced to the window, entries empty — they seed lazily from the
    /// imputation's own exact evaluations) if this reference set has no live
    /// state yet.
    fn shortlist_for(&mut self, references: &[SeriesId]) -> Result<usize, TsError> {
        if let Some(idx) = self
            .shortlists
            .iter()
            .position(|s| s.state.references() == references)
        {
            return Ok(idx);
        }
        let config = self.imputer.config();
        let mut state = ShortlistMaintainer::new(
            references.to_vec(),
            config.pattern_length,
            config.window_length,
            config.allow_missing_in_patterns,
        )?;
        // One advance syncs the fresh state to the window (a cold advance
        // has no entries to slide, so this is O(d)).
        state.advance(&self.window)?;
        self.shortlists.push(Shortlist {
            state,
            last_used: self.tick_count,
        });
        MAINTAINERS_CREATED.inc();
        Ok(self.shortlists.len() - 1)
    }

    /// Folds one imputation's [`PruneStats`] into the engine totals, the
    /// fleet-wide metrics registry and the flight recorder (record-only).
    fn record_prune_stats(&mut self, target: SeriesId, stats: &PruneStats) {
        self.prune_totals.candidates += stats.candidates;
        self.prune_totals.shortlisted += stats.shortlisted;
        self.prune_totals.pruned += stats.pruned;
        self.prune_totals.level1_skipped += stats.level1_skipped;
        self.prune_totals.maintained_pruned += stats.maintained_pruned;
        self.prune_totals.maintained_lags += stats.maintained_lags;
        PRUNE_TOTALS[0].add(stats.candidates as u64);
        PRUNE_TOTALS[1].add(stats.shortlisted as u64);
        PRUNE_TOTALS[2].add(stats.pruned as u64);
        PRUNE_TOTALS[3].add(stats.level1_skipped as u64);
        PRUNE_TOTALS[4].add(stats.maintained_pruned as u64);
        PRUNE_TOTALS[5].add(stats.maintained_lags as u64);
        tkcm_obs::recorder().record(
            "prune_summary",
            vec![
                ("series", tkcm_obs::FieldValue::U64(u64::from(target.0))),
                (
                    "candidates",
                    tkcm_obs::FieldValue::U64(stats.candidates as u64),
                ),
                (
                    "shortlisted",
                    tkcm_obs::FieldValue::U64(stats.shortlisted as u64),
                ),
                ("pruned", tkcm_obs::FieldValue::U64(stats.pruned as u64)),
                (
                    "level1_skipped",
                    tkcm_obs::FieldValue::U64(stats.level1_skipped as u64),
                ),
                (
                    "maintained_pruned",
                    tkcm_obs::FieldValue::U64(stats.maintained_pruned as u64),
                ),
                (
                    "maintained_lags",
                    tkcm_obs::FieldValue::U64(stats.maintained_lags as u64),
                ),
            ],
        );
    }

    /// Processes one arriving tick: pushes it into the window, advances the
    /// incremental dissimilarity states, imputes every missing series and
    /// writes the imputed values back into the window (patching the states).
    pub fn process_tick(&mut self, tick: &StreamTick) -> Result<EngineOutcome, TsError> {
        self.advance_tick(tick)?;
        let incremental = self.is_incremental();

        let mut outcome = EngineOutcome::default();
        let missing = self.window.currently_missing();
        for target in missing {
            // Reference selection per Section 3: the first d ranked candidates
            // that are alive right now (observed at this tick, or already
            // imputed earlier in this loop).
            let d = self.imputer.config().reference_count;
            let window = &self.window;
            let selection = self.catalog.select_references(target, d, |cand| {
                window
                    .value_recent(cand, 0)
                    .map(|v| v.is_some())
                    .unwrap_or(false)
            });
            if selection.references.is_empty() {
                outcome.skipped.push(target);
                continue;
            }
            let (detail, maintainer) = if self.is_composed() {
                let start = Instant::now();
                let sidx = self.shortlist_for(&selection.references)?;
                self.shortlists[sidx].last_used = self.tick_count;
                self.breakdown.maintenance += start.elapsed();
                let run_len = self.level1_run_len;
                let index = self.signatures.as_ref().ok_or_else(|| {
                    TsError::invalid("signature", "composed path without a signature index")
                })?;
                let (detail, stats) = self.imputer.impute_composed(
                    &self.window,
                    target,
                    &selection.references,
                    index,
                    &mut self.shortlists[sidx].state,
                    run_len,
                )?;
                self.record_prune_stats(target, &stats);
                (detail, None)
            } else if let Some(index) = self.signatures.as_ref() {
                let (detail, stats) = self.imputer.impute_pruned(
                    &self.window,
                    target,
                    &selection.references,
                    index,
                )?;
                self.record_prune_stats(target, &stats);
                (detail, None)
            } else if incremental {
                let start = Instant::now();
                let idx = self.maintainer_for(&selection.references)?;
                self.maintainers[idx].last_used = self.tick_count;
                self.breakdown.maintenance += start.elapsed();
                let detail = self.imputer.impute_maintained(
                    &self.window,
                    target,
                    &selection.references,
                    &self.maintainers[idx].state,
                )?;
                (detail, Some(idx))
            } else {
                let detail = self
                    .imputer
                    .impute(&self.window, target, &selection.references)?;
                (detail, None)
            };
            self.commit_write_back(target, &selection.references, detail.value, maintainer)?;
            self.breakdown.merge(&detail.breakdown);
            outcome.imputations.push(Imputation {
                series: target,
                time: detail.time,
                value: detail.value,
                detail,
            });
        }
        Ok(outcome)
    }

    /// Processes a batch of arriving ticks, in order, and returns one
    /// [`EngineOutcome`] per tick.
    ///
    /// The batch path is **bit-identical** to `N` sequential
    /// [`TkcmEngine::process_tick`] calls: each tick runs through exactly the
    /// same `advance_tick` → impute → `commit_write_back` sequence, so window
    /// contents, maintainer creation/eviction timing and every running sum
    /// come out the same bits either way (the property
    /// `tkcm-runtime/tests/batching.rs` pins).  Batching exists so callers —
    /// the sharded runtime's workers above all — can amortise *their* per-tick
    /// overhead (channel round-trips, WAL writes) across many ticks; the
    /// engine itself has no cheaper-than-per-tick shortcut that could be
    /// taken without breaking that equivalence.
    ///
    /// On an error at tick `i` the engine state reflects the `i` ticks that
    /// already committed — the same state `i` successful `process_tick`
    /// calls followed by one failing call would leave behind.
    pub fn process_batch(&mut self, ticks: &[StreamTick]) -> Result<Vec<EngineOutcome>, TsError> {
        let mut outcomes = Vec::with_capacity(ticks.len());
        for tick in ticks {
            outcomes.push(self.process_tick(tick)?);
        }
        Ok(outcomes)
    }

    /// Pushes a tick into the window and brings the maintained dissimilarity
    /// states up to date (TTL eviction + Section 6.2 advance).  Shared by
    /// [`TkcmEngine::process_tick`] and the WAL replay path so that replayed
    /// ticks mutate the state through exactly the code live ticks do.
    fn advance_tick(&mut self, tick: &StreamTick) -> Result<(), TsError> {
        self.window.push_tick(tick)?;
        self.tick_count += 1;
        if let Some(index) = self.signatures.as_mut() {
            index.on_push(&tick.values)?;
        }
        if self.is_incremental() && !self.maintainers.is_empty() {
            let start = Instant::now();
            let tick_count = self.tick_count;
            let ttl = self.maintainer_ttl();
            let before_eviction = self.maintainers.len();
            self.maintainers
                .retain(|m| tick_count.saturating_sub(m.last_used) <= ttl);
            MAINTAINERS_EVICTED.add((before_eviction - self.maintainers.len()) as u64);
            for m in &mut self.maintainers {
                m.state.advance(&self.window)?;
            }
            self.breakdown.maintenance += start.elapsed();
        }
        if self.is_composed() && !self.shortlists.is_empty() {
            // Same lifecycle as the dense maintainers: evict whole states
            // idle past the TTL, slide the survivors (each is O(entries·d),
            // and entries self-TTL inside `ShortlistMaintainer::advance`).
            let start = Instant::now();
            let tick_count = self.tick_count;
            let ttl = self.maintainer_ttl();
            let before_eviction = self.shortlists.len();
            self.shortlists
                .retain(|s| tick_count.saturating_sub(s.last_used) <= ttl);
            MAINTAINERS_EVICTED.add((before_eviction - self.shortlists.len()) as u64);
            for s in &mut self.shortlists {
                s.state.advance(&self.window)?;
            }
            self.breakdown.maintenance += start.elapsed();
        }
        Ok(())
    }

    /// Commits one imputed value: ensures the reference set's maintainer
    /// exists (creating it rebuilds from the *pre-write* window, matching
    /// where the live path creates it before imputing), writes the value into
    /// the window and patches every affected maintainer.
    ///
    /// The write-back changes a current-tick slot from missing to imputed;
    /// every state whose reference set contains the target must fold the new
    /// value into its running sums so later imputations at this tick (and
    /// future ticks) see the same window contents as a from-scratch recompute
    /// would.  States whose reference set does not contain the target are
    /// untouched by the write and are skipped — invalidating all of them made
    /// every write-back O(maintainers) even when only one (or none) of the
    /// states could be affected.
    /// `maintainer` is the reference set's already-resolved maintainer index
    /// when the caller just looked it up (the live path, which needed the
    /// state to impute); `None` makes this method resolve it — the replay
    /// path, where ensuring the maintainer exists *before* the write is what
    /// reproduces the live path's creation timing.
    fn commit_write_back(
        &mut self,
        target: SeriesId,
        references: &[SeriesId],
        value: f64,
        maintainer: Option<usize>,
    ) -> Result<(), TsError> {
        let incremental = self.is_incremental();
        let composed = self.is_composed();
        if incremental && maintainer.is_none() {
            let start = Instant::now();
            let idx = self.maintainer_for(references)?;
            self.maintainers[idx].last_used = self.tick_count;
            self.breakdown.maintenance += start.elapsed();
        }
        if composed {
            // Mirror the live path's creation timing on WAL replay: the
            // shortlist state for this reference set is created (synced,
            // entries empty) before the write lands.  On the live path this
            // finds the state `process_tick` already resolved.  Replayed
            // engines do not re-run imputations, so their entries re-seed
            // lazily — which only affects *pruning effectiveness*, never
            // imputed bits (every `D` is exact either way).
            let start = Instant::now();
            let idx = self.shortlist_for(references)?;
            self.shortlists[idx].last_used = self.tick_count;
            self.breakdown.maintenance += start.elapsed();
        }
        self.window.write_imputed(target, 0, value)?;
        if let Some(index) = self.signatures.as_mut() {
            // Engine write-backs always turn a missing current-tick slot
            // into an imputed one (`currently_missing` / WAL replay both
            // target missing slots), so the slot's missing count drops.
            index.on_write(target, 0, value, true);
        }
        if incremental {
            let start = Instant::now();
            for m in &mut self.maintainers {
                if m.state.references().contains(&target) {
                    m.state.on_write(&self.window, target, 0, None)?;
                }
            }
            self.breakdown.maintenance += start.elapsed();
        }
        if composed {
            let start = Instant::now();
            for s in &mut self.shortlists {
                if s.state.references().contains(&target) {
                    s.state.on_write(&self.window, target, 0, None)?;
                }
            }
            self.breakdown.maintenance += start.elapsed();
        }
        self.imputation_count += 1;
        Ok(())
    }

    /// Replays one logged tick and its write-backs, reproducing the exact
    /// state transitions of the original [`TkcmEngine::process_tick`] call —
    /// same window bits, same maintainer creation/eviction timing, same
    /// running-sum arithmetic — without re-running pattern extraction or
    /// selection (the logged values are authoritative).
    ///
    /// Entries whose tick time is not ahead of the window are *stale* — they
    /// describe ticks already covered by the snapshot the replay started
    /// from (a crash between snapshot rotation and WAL truncation leaves
    /// such entries behind) — and are skipped; `Ok(false)` reports that.
    pub fn apply_wal_entry(&mut self, entry: &crate::persist::WalEntry) -> Result<bool, TsError> {
        if let Some(now) = self.window.current_time() {
            if entry.tick.time <= now {
                return Ok(false);
            }
        }
        self.advance_tick(&entry.tick)?;
        for wb in &entry.write_backs {
            self.commit_write_back(wb.series, &wb.references, wb.value, None)?;
            // The live path counts imputations through the merged per-
            // imputation breakdown; keep the replayed counter in step (the
            // phase *durations* legitimately differ — they are wall-clock).
            self.breakdown.imputations += 1;
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TkcmConfig;

    fn catalog_for(width: usize) -> Catalog {
        Catalog::ring_neighbours(width)
    }

    fn sine(t: usize, period: f64, shift: f64) -> f64 {
        ((t as f64 - shift) / period * std::f64::consts::TAU).sin()
    }

    fn small_config(window: usize, l: usize, k: usize, d: usize) -> TkcmConfig {
        TkcmConfig::builder()
            .window_length(window)
            .pattern_length(l)
            .anchor_count(k)
            .reference_count(d)
            .build()
            .unwrap()
    }

    #[test]
    fn engine_imputes_missing_block_and_writes_back() {
        let width = 3;
        let period = 32.0;
        let config = small_config(256, 4, 3, 2);
        let mut engine = TkcmEngine::new(width, config, catalog_for(width)).unwrap();

        let total = 256usize;
        let gap_start = 200usize;
        let mut errors = Vec::new();
        for t in 0..total {
            let truth = sine(t, period, 0.0);
            let s0 = if (gap_start..gap_start + 20).contains(&t) {
                None
            } else {
                Some(truth)
            };
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, Some(sine(t, period, 5.0)), Some(sine(t, period, 11.0))],
            );
            let outcome = engine.process_tick(&tick).unwrap();
            if s0.is_none() {
                let imputed = outcome.imputed_value(SeriesId(0)).expect("should impute");
                errors.push((imputed - truth).abs());
                // Write-back: the window now holds the imputed value.
                assert_eq!(
                    engine.window().value_recent(SeriesId(0), 0).unwrap(),
                    Some(imputed)
                );
            } else {
                assert!(outcome.imputations.is_empty());
            }
        }
        assert_eq!(errors.len(), 20);
        let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / errors.len() as f64).sqrt();
        assert!(rmse < 0.1, "rmse = {rmse}");
        assert_eq!(engine.imputations_performed(), 20);
        assert_eq!(engine.ticks_processed(), total);
        assert_eq!(engine.phase_breakdown().imputations, 20);
    }

    #[test]
    fn multiple_series_missing_at_the_same_tick() {
        let width = 4;
        let config = small_config(128, 3, 2, 2);
        let mut engine = TkcmEngine::new(width, config, catalog_for(width)).unwrap();
        for t in 0..100usize {
            let base = sine(t, 25.0, 0.0);
            let missing_tick = t == 99;
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![
                    if missing_tick { None } else { Some(base) },
                    if missing_tick { None } else { Some(base * 2.0) },
                    Some(sine(t, 25.0, 3.0)),
                    Some(sine(t, 25.0, 7.0)),
                ],
            );
            let outcome = engine.process_tick(&tick).unwrap();
            if missing_tick {
                assert_eq!(outcome.imputations.len(), 2);
                assert!(outcome.imputed_value(SeriesId(0)).is_some());
                assert!(outcome.imputed_value(SeriesId(1)).is_some());
                assert!(outcome.skipped.is_empty());
            }
        }
    }

    #[test]
    fn series_without_alive_references_is_skipped() {
        // Catalog where series 0 has only series 1 as candidate, and both are
        // missing at the same tick -> no imputation possible for series 0
        // until series 1 recovers... but series 1 has series 0 as candidate,
        // so both get skipped.
        let mut catalog = Catalog::new();
        catalog
            .set_candidates(SeriesId(0), vec![SeriesId(1)])
            .unwrap();
        catalog
            .set_candidates(SeriesId(1), vec![SeriesId(0)])
            .unwrap();
        let config = small_config(64, 2, 2, 1);
        let mut engine = TkcmEngine::new(2, config, catalog).unwrap();
        for t in 0..20usize {
            let missing = t == 19;
            let v = if missing { None } else { Some(t as f64) };
            let outcome = engine
                .process_tick(&StreamTick::new(Timestamp::new(t as i64), vec![v, v]))
                .unwrap();
            if missing {
                assert_eq!(outcome.skipped.len(), 2);
                assert!(outcome.imputations.is_empty());
            }
        }
    }

    #[test]
    fn imputed_reference_can_serve_later_imputations() {
        // Series 1 goes missing first and is imputed; at a later tick series 0
        // goes missing and uses (previously imputed) series 1 values inside
        // its patterns — the engine must not reject them.
        let width = 3;
        let config = small_config(128, 3, 2, 2);
        let mut catalog = Catalog::new();
        catalog
            .set_candidates(SeriesId(0), vec![SeriesId(1), SeriesId(2)])
            .unwrap();
        catalog
            .set_candidates(SeriesId(1), vec![SeriesId(2), SeriesId(0)])
            .unwrap();
        catalog
            .set_candidates(SeriesId(2), vec![SeriesId(1), SeriesId(0)])
            .unwrap();
        let mut engine = TkcmEngine::new(width, config, catalog).unwrap();
        for t in 0..120usize {
            let base = sine(t, 20.0, 0.0);
            let s1_missing = (60..70).contains(&t);
            let s0_missing = t == 119;
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![
                    if s0_missing { None } else { Some(base) },
                    if s1_missing {
                        None
                    } else {
                        Some(sine(t, 20.0, 4.0))
                    },
                    Some(sine(t, 20.0, 9.0)),
                ],
            );
            let outcome = engine.process_tick(&tick).unwrap();
            if s0_missing {
                assert_eq!(outcome.imputations.len(), 1);
                let imputed = outcome.imputed_value(SeriesId(0)).unwrap();
                assert!((imputed - base).abs() < 0.2, "imputed {imputed} vs {base}");
            }
        }
        assert_eq!(engine.imputations_performed(), 11);
    }

    #[test]
    fn write_back_only_invalidates_maintainers_referencing_the_target() {
        // Two independent pairs: 0 ↔ 1 and 2 ↔ 3.  A maintainer exists for
        // reference set [1] (serving series 0) and one for [3] (serving
        // series 2).  Write-backs into series 2 must leave the [1] state
        // byte-identical to a twin run in which series 2 never goes missing
        // (so no write-back happens at all): the [1] state is a function of
        // series 1 alone, which is identical in both runs.
        let mut catalog = Catalog::new();
        catalog
            .set_candidates(SeriesId(0), vec![SeriesId(1)])
            .unwrap();
        catalog
            .set_candidates(SeriesId(1), vec![SeriesId(0)])
            .unwrap();
        catalog
            .set_candidates(SeriesId(2), vec![SeriesId(3)])
            .unwrap();
        catalog
            .set_candidates(SeriesId(3), vec![SeriesId(2)])
            .unwrap();
        // Pruning replaces maintainers entirely; this test inspects them, so
        // run the PR-2 incremental path explicitly.
        let config = crate::config::TkcmConfigBuilder::from_config(small_config(128, 3, 2, 1))
            .pruning(false)
            .build()
            .unwrap();
        let mut with_writes = TkcmEngine::new(4, config.clone(), catalog.clone()).unwrap();
        let mut without_writes = TkcmEngine::new(4, config, catalog).unwrap();

        let mut imputed_2 = 0usize;
        for t in 0..120usize {
            let base = sine(t, 24.0, 0.0);
            // Series 0 misses every 5th tick from 100 on (creates the [1]
            // maintainer in both runs and keeps it within its idle TTL);
            // series 2 later misses a block only in the first run, producing
            // the unrelated write-backs under test.
            let s0 = if t >= 100 && t % 5 == 0 {
                None
            } else {
                Some(base)
            };
            let s2 = Some(sine(t, 24.0, 3.0));
            let s2_gapped = if (110..118).contains(&t) { None } else { s2 };
            let others = (Some(sine(t, 24.0, 7.0)), Some(sine(t, 24.0, 11.0)));

            let tick_a = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, others.0, s2_gapped, others.1],
            );
            let tick_b =
                StreamTick::new(Timestamp::new(t as i64), vec![s0, others.0, s2, others.1]);
            let outcome = with_writes.process_tick(&tick_a).unwrap();
            without_writes.process_tick(&tick_b).unwrap();
            imputed_2 += usize::from(outcome.imputed_value(SeriesId(2)).is_some());

            let state_of = |e: &TkcmEngine| {
                e.maintainers
                    .iter()
                    .find(|m| m.state.references() == [SeriesId(1)])
                    .map(|m| format!("{:?}", m.state))
            };
            assert_eq!(
                state_of(&with_writes),
                state_of(&without_writes),
                "tick {t}: series-2 write-back leaked into the [1] maintainer"
            );
            if t >= 100 {
                assert!(
                    state_of(&with_writes).is_some(),
                    "maintainer [1] evicted early"
                );
            }
        }
        assert_eq!(imputed_2, 8);
    }

    #[test]
    fn process_batch_is_bit_identical_to_sequential_ticks() {
        let width = 3;
        let config = small_config(128, 3, 2, 2);
        let mut per_tick = TkcmEngine::new(width, config.clone(), catalog_for(width)).unwrap();
        let mut batched = TkcmEngine::new(width, config, catalog_for(width)).unwrap();

        let ticks: Vec<StreamTick> = (0..120usize)
            .map(|t| {
                let missing = t > 40 && t % 6 == 0;
                let s0 = if missing {
                    None
                } else {
                    Some(sine(t, 24.0, 0.0))
                };
                StreamTick::new(
                    Timestamp::new(t as i64),
                    vec![s0, Some(sine(t, 24.0, 5.0)), Some(sine(t, 24.0, 11.0))],
                )
            })
            .collect();

        let mut sequential = Vec::with_capacity(ticks.len());
        for tick in &ticks {
            sequential.push(per_tick.process_tick(tick).unwrap());
        }
        // Mixed batch sizes, including single-tick and the full remainder.
        let mut merged = Vec::with_capacity(ticks.len());
        for chunk in [&ticks[..1], &ticks[1..8], &ticks[8..64], &ticks[64..]] {
            merged.extend(batched.process_batch(chunk).unwrap());
        }

        assert_eq!(merged.len(), sequential.len());
        for (t, (a, b)) in sequential.iter().zip(merged.iter()).enumerate() {
            assert_eq!(a.skipped, b.skipped, "tick {t}");
            assert_eq!(a.imputations.len(), b.imputations.len(), "tick {t}");
            for (x, y) in a.imputations.iter().zip(b.imputations.iter()) {
                assert_eq!(x.series, y.series);
                assert_eq!(x.value.to_bits(), y.value.to_bits(), "tick {t}");
                assert_eq!(x.detail.anchors, y.detail.anchors);
            }
        }
        assert_eq!(per_tick.ticks_processed(), batched.ticks_processed());
        assert_eq!(
            per_tick.imputations_performed(),
            batched.imputations_performed()
        );
        assert_eq!(per_tick.maintainer_count(), batched.maintainer_count());
    }

    #[test]
    fn process_batch_error_leaves_the_committed_prefix() {
        let config = small_config(64, 2, 2, 1);
        let mut engine = TkcmEngine::new(2, config, catalog_for(2)).unwrap();
        let good = |t: i64| StreamTick::new(Timestamp::new(t), vec![Some(1.0), Some(2.0)]);
        // Third tick repeats a timestamp: the first two commit, the batch errors.
        let batch = vec![good(0), good(1), good(1)];
        assert!(engine.process_batch(&batch).is_err());
        assert_eq!(engine.ticks_processed(), 2);
        // An empty batch is a no-op.
        assert_eq!(engine.process_batch(&[]).unwrap().len(), 0);
        assert_eq!(engine.ticks_processed(), 2);
    }

    #[test]
    fn pruned_path_matches_exhaustive_and_incremental_bit_for_bit() {
        let width = 3;
        let base = small_config(320, 16, 2, 2);
        let mk = |pruning: bool, incremental: bool| {
            let config = crate::config::TkcmConfigBuilder::from_config(base.clone())
                .pruning(pruning)
                .incremental(incremental)
                .build()
                .unwrap();
            TkcmEngine::new(width, config, catalog_for(width)).unwrap()
        };
        // The four dispatch corners: (pruning, incremental).
        let mut composed = mk(true, true);
        let mut pruned = mk(true, false);
        let mut incremental = mk(false, true);
        let mut exhaustive = mk(false, false);
        assert!(composed.is_pruned() && composed.is_composed() && !composed.is_incremental());
        assert!(pruned.is_pruned() && !pruned.is_composed() && !pruned.is_incremental());
        assert!(!incremental.is_pruned() && incremental.is_incremental());
        assert!(!exhaustive.is_pruned() && !exhaustive.is_incremental());

        // Period-128 integer sawtooths: candidates one/two periods back match
        // the query exactly (τ = 0), every off-phase candidate has a large
        // envelope gap — the regime the signature index is built for.
        let saw = |t: usize, shift: usize| ((t + shift) % 128) as f64;
        for t in 0..400usize {
            let missing = t > 60 && t % 7 < 2;
            let s0 = if missing { None } else { Some(saw(t, 0)) };
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![s0, Some(saw(t, 31)), Some(saw(t, 67))],
            );
            let m = composed.process_tick(&tick).unwrap();
            let a = pruned.process_tick(&tick).unwrap();
            let b = incremental.process_tick(&tick).unwrap();
            let c = exhaustive.process_tick(&tick).unwrap();
            assert_eq!(a.skipped, b.skipped, "tick {t}");
            assert_eq!(a.skipped, c.skipped, "tick {t}");
            assert_eq!(a.imputations.len(), b.imputations.len(), "tick {t}");
            assert_eq!(a.imputations.len(), c.imputations.len(), "tick {t}");
            // Composed vs exhaustive: fully bit-identical outcomes (both
            // evaluate the exact D of every anchor; bounds only skip losers).
            assert_eq!(
                m.timing_stripped(),
                c.timing_stripped(),
                "tick {t}: composed diverged from exhaustive"
            );
            for ((x, y), z) in a
                .imputations
                .iter()
                .zip(b.imputations.iter())
                .zip(c.imputations.iter())
            {
                // Pruned vs exhaustive: bit-identical (both evaluate the
                // exact D of every anchor; pruning only skips losers).
                assert_eq!(x.value.to_bits(), z.value.to_bits(), "tick {t}");
                assert_eq!(x.detail.anchors, z.detail.anchors, "tick {t}");
                assert_eq!(x.detail.complete, z.detail.complete, "tick {t}");
                // Vs the PR-2 incremental path: that path's running sums are
                // only 1e-9-close to exact (its own equivalence contract),
                // so anchor times must agree but D may differ in low bits.
                let tx: Vec<_> = x.detail.anchors.iter().map(|a| a.time).collect();
                let ty: Vec<_> = y.detail.anchors.iter().map(|a| a.time).collect();
                assert_eq!(tx, ty, "tick {t}");
                assert!((x.value - y.value).abs() <= 1e-9 * (1.0 + x.value.abs()));
            }
        }
        let totals = pruned.prune_totals();
        assert!(totals.candidates > 0);
        assert!(
            totals.pruned > 0,
            "expected some pruning on a periodic signal: {totals:?}"
        );
        assert_eq!(
            totals.maintained_lags, 0,
            "pruned-only path has no shortlists"
        );
        let ctotals = composed.prune_totals();
        assert_eq!(ctotals.candidates, totals.candidates);
        assert!(
            ctotals.pruned > 0,
            "expected composed pruning on a periodic signal: {ctotals:?}"
        );
        assert!(
            ctotals.maintained_lags > 0,
            "composed path should carry shortlist entries: {ctotals:?}"
        );
        assert!(composed.shortlist_count() > 0);
        assert_eq!(pruned.shortlist_count(), 0);
        assert_eq!(incremental.prune_totals(), PruneStats::default());
    }

    #[test]
    fn constructor_validation() {
        let config = small_config(64, 2, 2, 1);
        assert!(TkcmEngine::new(0, config.clone(), Catalog::new()).is_err());
        let bad = TkcmConfig {
            pattern_length: 0,
            ..TkcmConfig::default()
        };
        assert!(TkcmEngine::new(2, bad, Catalog::new()).is_err());
        let imputer = TkcmImputer::new(config).unwrap();
        assert!(TkcmEngine::with_imputer(0, imputer, Catalog::new()).is_err());
    }

    #[test]
    fn accessors_expose_state() {
        let config = small_config(64, 2, 2, 1);
        let engine = TkcmEngine::new(2, config.clone(), catalog_for(2)).unwrap();
        assert_eq!(engine.config().window_length, 64);
        assert_eq!(engine.window().width(), 2);
        assert_eq!(engine.catalog().len(), 2);
        assert_eq!(engine.ticks_processed(), 0);
        assert_eq!(engine.imputations_performed(), 0);
    }
}
