//! Regression tests for timestamp handling at real sensor cadences.
//!
//! The paper's running example samples every 5 minutes; the Chlorine dataset
//! every 10 minutes.  When tick timestamps carry that cadence (e.g. epoch
//! seconds 600 apart) the engine must report the *actual* tick times for
//! imputations and anchors.  A previous implementation computed anchor times
//! as `now - age` — correct only when consecutive ticks are exactly one
//! timestamp unit apart — so at a 600-second cadence every reported anchor
//! time fell between two real ticks.

use tkcm_core::{TkcmConfig, TkcmEngine};
use tkcm_timeseries::{Catalog, SeriesId, StreamTick, Timestamp};

const CADENCE: i64 = 600;

fn config(incremental: bool) -> TkcmConfig {
    TkcmConfig::builder()
        .window_length(256)
        .pattern_length(4)
        .anchor_count(3)
        .reference_count(2)
        .incremental(incremental)
        .build()
        .unwrap()
}

fn sine(t: usize, shift: f64) -> f64 {
    ((t as f64 - shift) / 32.0 * std::f64::consts::TAU).sin()
}

/// Streams 10-minute-cadence data with a gap and returns the engine plus all
/// imputations `(tick index, Imputation)`.
fn run_at_cadence(incremental: bool) -> (TkcmEngine, Vec<(usize, tkcm_core::Imputation)>) {
    let width = 3;
    let mut engine =
        TkcmEngine::new(width, config(incremental), Catalog::ring_neighbours(width)).unwrap();
    let mut imputations = Vec::new();
    for i in 0..256usize {
        let missing = (200..220).contains(&i);
        let s0 = if missing { None } else { Some(sine(i, 0.0)) };
        let tick = StreamTick::new(
            Timestamp::new(i as i64 * CADENCE),
            vec![s0, Some(sine(i, 5.0)), Some(sine(i, 11.0))],
        );
        let outcome = engine.process_tick(&tick).unwrap();
        for imp in outcome.imputations {
            imputations.push((i, imp));
        }
    }
    (engine, imputations)
}

#[test]
fn imputation_and_anchor_times_match_the_real_tick_times() {
    for incremental in [true, false] {
        let (engine, imputations) = run_at_cadence(incremental);
        assert_eq!(imputations.len(), 20);
        for (i, imp) in &imputations {
            // The imputed time point is the arriving tick's own timestamp.
            assert_eq!(
                imp.time,
                Timestamp::new(*i as i64 * CADENCE),
                "imputation time off at tick {i} (incremental={incremental})"
            );
            assert!(!imp.detail.anchors.is_empty());
            for anchor in &imp.detail.anchors {
                // Every anchor must sit exactly on a past tick of the
                // 600-second grid...
                assert_eq!(
                    anchor.time.tick() % CADENCE,
                    0,
                    "anchor time {} is not a real tick time (incremental={incremental})",
                    anchor.time
                );
                assert!(anchor.time < imp.time);
            }
            // ...and the newest anchors must still resolve in the window to
            // the value the anchor reported (the anchor provenance rule:
            // observed target values only).
            let anchor = imp.detail.anchors.last().unwrap();
            if let Ok(v) = engine.window().value_at(SeriesId(0), anchor.time) {
                if *i == 255 {
                    assert_eq!(v, Some(anchor.value));
                }
            }
        }
    }
}

#[test]
fn cadence_does_not_change_what_gets_imputed() {
    // The imputed *values* are a function of tick indices only — replaying
    // the identical data at unit cadence must produce identical values, and
    // the incremental and exact engines must agree at the real cadence.
    let (_, at_cadence) = run_at_cadence(true);
    let (_, exact) = run_at_cadence(false);
    assert_eq!(at_cadence.len(), exact.len());
    for ((i_a, a), (i_b, b)) in at_cadence.iter().zip(exact.iter()) {
        assert_eq!(i_a, i_b);
        assert_eq!(a.value, b.value, "incremental vs exact at tick {i_a}");
    }

    let width = 3;
    let mut unit = TkcmEngine::new(width, config(true), Catalog::ring_neighbours(width)).unwrap();
    let mut unit_imputations = Vec::new();
    for i in 0..256usize {
        let missing = (200..220).contains(&i);
        let s0 = if missing { None } else { Some(sine(i, 0.0)) };
        let tick = StreamTick::new(
            Timestamp::new(i as i64),
            vec![s0, Some(sine(i, 5.0)), Some(sine(i, 11.0))],
        );
        for imp in unit.process_tick(&tick).unwrap().imputations {
            unit_imputations.push(imp.value);
        }
    }
    for ((_, a), b) in at_cadence.iter().zip(unit_imputations.iter()) {
        assert_eq!(a.value, *b, "cadence changed an imputed value");
    }
}

/// Irregular (jittered) tick timestamps of a real-world sensor feed: the
/// nominal 600-second cadence plus a deterministic per-tick network delay,
/// so consecutive deltas vary but stay strictly increasing.
fn jittered_time(i: usize) -> i64 {
    i as i64 * CADENCE + ((i as i64 * 37) % 241)
}

#[test]
fn jittered_cadence_through_the_fleet_path_matches_sequential() {
    // Two independent 3-series clusters replayed through the multi-threaded
    // ShardedEngine at 2 shards and through one sequential TkcmEngine over
    // the same catalog (the clusters are the catalog components, so no edge
    // is dropped and the two must agree exactly).  All reported times —
    // imputation times and anchor times — must sit on the *jittered* grid,
    // which a `now - age` timestamp computation cannot produce.
    use tkcm_runtime::ShardedEngine;

    let width = 6;
    let mut catalog = Catalog::new();
    for cluster in 0..2usize {
        let base = cluster * 3;
        for member in 0..3usize {
            let ranked = (1..3)
                .map(|step| SeriesId::from(base + (member + step) % 3))
                .collect();
            catalog
                .set_candidates(SeriesId::from(base + member), ranked)
                .unwrap();
        }
    }

    let mut sharded = ShardedEngine::new(width, config(true), catalog.clone(), 2).unwrap();
    assert_eq!(sharded.shard_count(), 2);
    let mut sequential = TkcmEngine::new(width, config(true), catalog).unwrap();

    let mut tick_times = Vec::new();
    let mut checked_imputations = 0usize;
    for i in 0..256usize {
        let time = jittered_time(i);
        tick_times.push(time);
        let values: Vec<Option<f64>> = (0..width)
            .map(|s| {
                // Staggered outages across both clusters.
                if i > 190 && (i + 9 * s) % 17 < 4 {
                    None
                } else {
                    Some(sine(i, (2 * s) as f64))
                }
            })
            .collect();
        let tick = StreamTick::new(Timestamp::new(time), values);
        let fleet_outcome = sharded.process_tick(&tick).unwrap();
        let seq_outcome = sequential.process_tick(&tick).unwrap();

        assert_eq!(
            fleet_outcome.imputations.len(),
            seq_outcome.imputations.len(),
            "tick {i}: sharded and sequential disagree on what to impute"
        );
        for (fleet, seq) in fleet_outcome
            .imputations
            .iter()
            .zip(seq_outcome.imputations.iter())
        {
            checked_imputations += 1;
            assert_eq!(fleet.series, seq.series);
            // Reported times must agree between the fleet and sequential
            // paths AND be real jittered tick times.
            assert_eq!(fleet.time, seq.time, "tick {i}: imputation time diverged");
            assert_eq!(fleet.time, Timestamp::new(time));
            assert_eq!(fleet.value.to_bits(), seq.value.to_bits());
            let fleet_anchor_times: Vec<Timestamp> =
                fleet.detail.anchors.iter().map(|a| a.time).collect();
            let seq_anchor_times: Vec<Timestamp> =
                seq.detail.anchors.iter().map(|a| a.time).collect();
            assert_eq!(
                fleet_anchor_times, seq_anchor_times,
                "tick {i}: anchor times diverged between fleet and sequential"
            );
            for anchor in &fleet_anchor_times {
                assert!(
                    tick_times.binary_search(&anchor.tick()).is_ok(),
                    "tick {i}: anchor time {anchor} is not a real jittered tick time"
                );
            }
        }
        assert_eq!(fleet_outcome.skipped, seq_outcome.skipped);
    }
    assert!(
        checked_imputations > 20,
        "schedule produced too few imputations ({checked_imputations}) to be meaningful"
    );
}

#[test]
fn jittered_cadence_survives_eight_shards_and_a_migration() {
    // The widest fleet shape the partitioner supports in CI: eight 2-series
    // clusters spread over 8 shards (one component per shard), replayed on
    // the jittered grid against a sequential engine, with a component
    // forcibly migrated mid-stream.  Migration hands engine state across
    // workers through the snapshot codec — if any path reconstructed times
    // from ages, the handed-off component's anchors would leave the grid.
    use tkcm_runtime::ShardedEngine;

    let clusters = 8usize;
    let width = clusters * 2;
    let mut catalog = Catalog::new();
    for cluster in 0..clusters {
        let base = cluster * 2;
        catalog
            .set_candidates(SeriesId::from(base), vec![SeriesId::from(base + 1)])
            .unwrap();
        catalog
            .set_candidates(SeriesId::from(base + 1), vec![SeriesId::from(base)])
            .unwrap();
    }

    let mut sharded = ShardedEngine::new(width, config(true), catalog.clone(), 8).unwrap();
    assert_eq!(sharded.shard_count(), 8);
    assert_eq!(sharded.partition().component_count(), clusters);
    let mut sequential = TkcmEngine::new(width, config(true), catalog).unwrap();

    let mut tick_times = Vec::new();
    let mut checked_imputations = 0usize;
    for i in 0..256usize {
        if i == 140 {
            // Move cluster 0 off shard 0 onto the last shard mid-stream.
            sharded.force_migration(0, 7).unwrap();
        }
        let time = jittered_time(i);
        tick_times.push(time);
        let values: Vec<Option<f64>> = (0..width)
            .map(|s| {
                if i > 180 && (i + 5 * s) % 11 < 3 {
                    None
                } else {
                    Some(sine(i, (3 * s) as f64))
                }
            })
            .collect();
        let tick = StreamTick::new(Timestamp::new(time), values);
        let fleet_outcome = sharded.process_tick(&tick).unwrap();
        let seq_outcome = sequential.process_tick(&tick).unwrap();

        assert_eq!(
            fleet_outcome.imputations.len(),
            seq_outcome.imputations.len(),
            "tick {i}: 8-shard fleet and sequential disagree on what to impute"
        );
        for (fleet, seq) in fleet_outcome
            .imputations
            .iter()
            .zip(seq_outcome.imputations.iter())
        {
            checked_imputations += 1;
            assert_eq!(fleet.series, seq.series);
            assert_eq!(fleet.time, seq.time, "tick {i}: imputation time diverged");
            assert_eq!(fleet.time, Timestamp::new(time));
            assert_eq!(fleet.value.to_bits(), seq.value.to_bits());
            for anchor in &fleet.detail.anchors {
                assert!(
                    tick_times.binary_search(&anchor.time.tick()).is_ok(),
                    "tick {i}: anchor time {} is not a real jittered tick time",
                    anchor.time
                );
            }
        }
        assert_eq!(fleet_outcome.skipped, seq_outcome.skipped);
    }
    assert_eq!(sharded.partition().shard_of_component(0), 7);
    assert_eq!(sharded.migrations_performed(), 1);
    assert!(
        checked_imputations > 40,
        "schedule produced too few imputations ({checked_imputations}) to be meaningful"
    );
}
