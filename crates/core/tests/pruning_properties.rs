//! Equivalence and admissibility properties of the signature-index pruned
//! candidate path (PR 7).
//!
//! Three families:
//!
//! 1. **Bit-identity** — an engine on the pruned path must produce *bitwise*
//!    the same imputations as an engine on the exhaustive exact path, across
//!    random periods, gap placements, pattern lengths and window capacities,
//!    with ring wrap-around and imputed write-backs in the mix.  (The PR-2
//!    incremental path is only tolerance-equivalent to exact, so the pruned
//!    path is compared against the *exhaustive* recompute, which it matches
//!    bit for bit — see `signature.rs` for the float-level argument.)
//! 2. **Admissibility** — the signature lower bound never exceeds the exact
//!    dissimilarity of any candidate, so a pruned candidate (LB > τ) can
//!    never belong to the k-NN anchor set.
//! 3. **Inadmissible fixture** — a deliberately inflated (hence wrong) bound
//!    must make the equivalence check *fail*, proving the suite detects
//!    over-pruning rather than vacuously passing.

use proptest::prelude::*;

use tkcm_core::{
    extract_pattern, extract_query_pattern, level1_run_len, Dissimilarity, L2Distance,
    ShortlistMaintainer, SignatureIndex, SignatureQuery, TkcmConfig, TkcmEngine, TkcmImputer,
};
use tkcm_timeseries::{Catalog, SeriesId, StreamTick, StreamingWindow, Timestamp};

/// From-scratch `D` at one candidate lag, computed exactly like the exact
/// imputer path (pattern extraction + the L2 distance of Definition 2).
fn from_scratch_d(
    window: &StreamingWindow,
    refs: &[SeriesId],
    l: usize,
    lag: usize,
    allow_missing: bool,
) -> f64 {
    let now = window.current_time().unwrap();
    let Some(query) = extract_query_pattern(window, refs, l, allow_missing).unwrap() else {
        return f64::INFINITY;
    };
    match extract_pattern(window, refs, now - lag as i64, l, allow_missing).unwrap() {
        Some(candidate) => L2Distance.distance(&candidate, &query),
        None => f64::INFINITY,
    }
}

proptest! {
    /// An engine with signature pruning enabled is bitwise indistinguishable
    /// from an engine on the exhaustive exact path: same skipped series,
    /// same imputation times, same anchors and the same value *bits*, over
    /// random integer sawtooths with random gaps, long enough to wrap the
    /// ring at least once (write-backs happen inside `process_tick`).
    #[test]
    fn pruned_engine_is_bit_identical_to_exhaustive(
        period in 16u64..200,
        shift1 in 0u64..97,
        shift2 in 0u64..53,
        gap_start_frac in 0.2f64..0.7,
        gap_len in 3usize..24,
        capacity in 48usize..160,
        l in 3usize..10,
    ) {
        let width = 3;
        let k = 2;
        let window_length = capacity.max((k + 1) * l);
        let total = window_length * 2 + 40; // wrap the ring at least once
        let gap_start = (total as f64 * gap_start_frac) as usize;

        let mk = |pruning: bool, incremental: bool| {
            let config = TkcmConfig::builder()
                .window_length(window_length)
                .pattern_length(l)
                .anchor_count(k)
                .reference_count(2)
                .incremental(incremental)
                .pruning(pruning)
                .build()
                .unwrap();
            TkcmEngine::new(width, config, Catalog::ring_neighbours(width)).unwrap()
        };
        // (pruning, incremental): (true, true) is the *composed* path —
        // level-1 prefilter + shortlist maintainers + level-0 bounds —
        // (true, false) the PR-7 pruned-only path.  Both must match the
        // exhaustive engine bit for bit.
        let mut composed = mk(true, true);
        let mut pruned = mk(true, false);
        let mut exhaustive = mk(false, false);
        prop_assert!(composed.is_pruned() && composed.is_composed());
        prop_assert!(pruned.is_pruned() && !pruned.is_composed());
        prop_assert!(!exhaustive.is_pruned());

        let saw = |t: usize, shift: u64| ((t as u64 + shift) % period) as f64;
        for t in 0..total {
            let s0_missing =
                (gap_start..gap_start + gap_len).contains(&t) || (t > 30 && t % 11 == 7);
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![
                    if s0_missing { None } else { Some(saw(t, 0)) },
                    Some(saw(t, shift1)),
                    Some(saw(t, shift2)),
                ],
            );
            let m = composed.process_tick(&tick).unwrap();
            let a = pruned.process_tick(&tick).unwrap();
            let b = exhaustive.process_tick(&tick).unwrap();

            prop_assert_eq!(&a.skipped, &b.skipped);
            prop_assert_eq!(&m.skipped, &b.skipped);
            prop_assert_eq!(a.imputations.len(), b.imputations.len());
            prop_assert_eq!(m.imputations.len(), b.imputations.len());
            for (x, y) in a
                .imputations
                .iter()
                .chain(m.imputations.iter())
                .zip(b.imputations.iter().chain(b.imputations.iter()))
            {
                prop_assert_eq!(x.series, y.series);
                prop_assert_eq!(x.time, y.time);
                prop_assert!(
                    x.value.to_bits() == y.value.to_bits(),
                    "tick {}: pruned/composed {} vs exhaustive {}",
                    t,
                    x.value,
                    y.value
                );
                prop_assert_eq!(&x.detail.anchors, &y.detail.anchors);
                prop_assert_eq!(x.detail.complete, y.detail.complete);
                prop_assert_eq!(x.detail.fallback, y.detail.fallback);
            }
        }
        prop_assert_eq!(
            pruned.imputations_performed(),
            exhaustive.imputations_performed()
        );
        prop_assert_eq!(
            composed.imputations_performed(),
            exhaustive.imputations_performed()
        );
        prop_assert_eq!(pruned.prune_totals().candidates > 0, pruned.imputations_performed() > 0);
        prop_assert_eq!(
            composed.prune_totals().candidates,
            pruned.prune_totals().candidates
        );
    }

    /// Admissibility of the bound itself: for every candidate lag the
    /// signature lower bound is at most the exact dissimilarity (in both
    /// missing-value modes — the bound is on the unscaled column sum, which
    /// the allow-missing rescale only inflates), and a `certain_missing`
    /// verdict implies the strict-mode dissimilarity really is infinite.
    /// Streams carry random gaps, run past one window (ring wrap) and are
    /// perturbed by write-backs at random ages before checking.
    #[test]
    fn lower_bound_never_exceeds_the_exact_dissimilarity(
        v1 in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 40..140),
        v2 in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 40..140),
        capacity in 16usize..48,
        l_raw in 2usize..6,
        write_ages in proptest::collection::vec(0usize..48, 0..6),
    ) {
        let width = 3;
        let l = l_raw.min(capacity / 2).max(1);
        let refs = vec![SeriesId(1), SeriesId(2)];
        let mut window = StreamingWindow::new(width, capacity);
        let mut index = SignatureIndex::new(width, capacity).unwrap();

        let len = v1.len().min(v2.len());
        for t in 0..len {
            let values = vec![Some(t as f64 * 0.5), v1[t], v2[t]];
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), values.clone()))
                .expect("tick accepted");
            index.on_push(&values).expect("push accepted");
        }
        for (i, &age) in write_ages.iter().enumerate() {
            let age = age % window.filled();
            for id in &refs {
                let old = window.value_recent(*id, age).expect("valid age");
                let value = i as f64 * 1.7 - 3.0;
                window.write_imputed(*id, age, value).expect("write accepted");
                index.on_write(*id, age, value, old.is_none());
            }
        }
        prop_assert!(index.is_synced(&window));

        let filled = window.filled();
        if filled >= 2 * l {
            // The query-exact bound variant the imputer actually uses: range
            // tables over the extracted query pattern (allow-missing mode so
            // gaps land in the query side too).
            let query = extract_query_pattern(&window, &refs, l, true).expect("valid geometry");
            let sig_query = query.as_ref().map(|q| {
                let rows: Vec<&[Option<f64>]> = (0..refs.len()).map(|ri| q.row(ri)).collect();
                SignatureQuery::new(&rows)
            });
            for lag in l..=(filled - l) {
                let (lb_env_sq, certain_missing) = index.lower_bound_sq(&refs, lag, l);
                let (lb_query_sq, certain_missing_q) = match &sig_query {
                    Some(sq) => index.lower_bound_sq_with_query(&refs, lag, l, sq),
                    None => (0.0, false),
                };
                for lb_sq in [lb_env_sq, lb_query_sq] {
                    prop_assert!(lb_sq.is_finite() && lb_sq >= 0.0);
                    for allow_missing in [false, true] {
                        let exact = from_scratch_d(&window, &refs, l, lag, allow_missing);
                        if exact.is_finite() {
                            prop_assert!(
                                lb_sq <= exact * exact * (1.0 + 1e-12),
                                "lag {}: lower bound {} exceeds exact D² {}",
                                lag,
                                lb_sq,
                                exact * exact
                            );
                        }
                    }
                }
                if certain_missing_q {
                    let strict = from_scratch_d(&window, &refs, l, lag, false);
                    prop_assert!(
                        strict.is_infinite(),
                        "lag {}: query-bound certain_missing but strict D = {}",
                        lag,
                        strict
                    );
                }
                if certain_missing {
                    let strict = from_scratch_d(&window, &refs, l, lag, false);
                    prop_assert!(
                        strict.is_infinite(),
                        "lag {}: certain_missing but strict D = {}",
                        lag,
                        strict
                    );
                }
            }
        }
    }
}

proptest! {
    /// Write-back widening across ring wrap-around *combined with*
    /// block-boundary-straddling imputed runs (the suite previously covered
    /// wrap and write-back separately): streams run past two full windows so
    /// the ring wraps, then contiguous imputed runs are written at ages
    /// chosen to straddle `SIGNATURE_BLOCK_LEN` boundaries.  Afterwards both
    /// per-lag bound variants *and* the composed path's level-1 run bound
    /// must stay admissible for every candidate lag and run width.
    #[test]
    fn write_back_runs_straddling_blocks_stay_admissible_after_wrap(
        period in 8u64..60,
        capacity in 48usize..96,
        l in 3usize..9,
        runs in proptest::collection::vec((0usize..96, 3usize..20, -40.0f64..40.0), 1..5),
        run_len_choice in 0usize..3,
    ) {
        let width = 3;
        let refs = vec![SeriesId(1), SeriesId(2)];
        let mut window = StreamingWindow::new(width, capacity);
        let mut index = SignatureIndex::new(width, capacity).unwrap();

        // Wrap the ring at least twice; sprinkle missing slots so the
        // write-backs hit both observed overwrites (NaN-poisoned sums) and
        // missing-slot fills (missing-count decrements).
        let total = capacity * 2 + 17;
        for t in 0..total {
            let gap = t % 13 == 5 || t % 7 == 3;
            let mk = |shift: u64| {
                if gap && shift != 0 {
                    None
                } else {
                    Some(((t as u64 + shift) % period) as f64)
                }
            };
            let values = vec![Some(t as f64 * 0.5), mk(3), mk(11)];
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), values.clone()))
                .expect("tick accepted");
            index.on_push(&values).expect("push accepted");
        }

        // Imputed runs: contiguous age spans.  A span of length ≥ 3 starting
        // at an arbitrary age straddles a block boundary whenever it crosses
        // a multiple of the block length in ordinal space, which the random
        // starts guarantee across cases.
        for &(start, span, value) in &runs {
            let start = start % (capacity - 1);
            let end = (start + span).min(capacity - 1);
            for age in start..end {
                for id in &refs {
                    let old = window.value_recent(*id, age).expect("valid age");
                    window.write_imputed(*id, age, value).expect("write accepted");
                    index.on_write(*id, age, value, old.is_none());
                }
            }
        }
        prop_assert!(index.is_synced(&window));

        let filled = window.filled();
        if filled >= 2 * l {
            let query = extract_query_pattern(&window, &refs, l, true).expect("valid geometry");
            let sig_query = query.as_ref().map(|q| {
                let rows: Vec<&[Option<f64>]> = (0..refs.len()).map(|ri| q.row(ri)).collect();
                SignatureQuery::new(&rows)
            });
            let j = filled - 2 * l + 1;
            let run_len = [1usize, 4, 16][run_len_choice];
            for lag in l..=(filled - l) {
                let (lb_env_sq, _) = index.lower_bound_sq(&refs, lag, l);
                let (lb_query_sq, _) = match &sig_query {
                    Some(sq) => index.lower_bound_sq_with_query(&refs, lag, l, sq),
                    None => (0.0, false),
                };
                for lb_sq in [lb_env_sq, lb_query_sq] {
                    prop_assert!(lb_sq.is_finite() && lb_sq >= 0.0);
                    let exact = from_scratch_d(&window, &refs, l, lag, true);
                    if exact.is_finite() {
                        prop_assert!(
                            lb_sq <= exact * exact * (1.0 + 1e-12),
                            "lag {}: lower bound {} exceeds exact D² {}",
                            lag,
                            lb_sq,
                            exact * exact
                        );
                    }
                }
            }
            // Level-1 run bound: admissible for *every* lag inside the run.
            if let Some(sq) = &sig_query {
                let oldest_age = filled - l;
                let mut s = 0usize;
                while s < j {
                    let e = (s + run_len).min(j);
                    let lag_lo = oldest_age - (e - 1);
                    let run_sq =
                        index.run_lower_bound_sq_with_query(&refs, lag_lo, e - s, l, sq);
                    prop_assert!(run_sq.is_finite() && run_sq >= 0.0);
                    for idx in s..e {
                        let lag = oldest_age - idx;
                        let exact = from_scratch_d(&window, &refs, l, lag, true);
                        if exact.is_finite() {
                            prop_assert!(
                                run_sq <= exact * exact * (1.0 + 1e-12),
                                "run [{}, {}) lag {}: run bound {} exceeds exact D² {}",
                                s,
                                e,
                                lag,
                                run_sq,
                                exact * exact
                            );
                        }
                    }
                    s = e;
                }
            }
        }
    }
}

/// Builds the inadmissibility fixture: a window + synced signature index in
/// which the true nearest candidate (an off-by-one copy of the query, D = 4)
/// has a *non-zero* lower bound, while a decoy candidate (alternating values
/// whose envelope straddles the query, D = 360) has a lower bound of exactly
/// zero.  With admissible bounds the pruned path finds the copy; inflating
/// the bounds prunes it and the decoy wins — a detectably different answer.
fn inadmissible_fixture() -> (StreamingWindow, SignatureIndex, TkcmImputer) {
    let width = 2;
    let capacity = 256usize;
    let l = 16usize; // one full signature block, so the query aligns with it
    let config = TkcmConfig::builder()
        .window_length(capacity)
        .pattern_length(l)
        .anchor_count(1)
        .reference_count(1)
        .build()
        .unwrap();
    let imputer = TkcmImputer::new(config).unwrap();
    let mut window = StreamingWindow::new(width, capacity);
    let mut index = SignatureIndex::new(width, capacity).unwrap();

    let total = 256usize;
    for t in 0..total {
        let age = total - 1 - t; // age of this tick once all pushes are done
        let reference = if age < 16 {
            10.0 // the query block: envelope [10, 10]
        } else if (96..112).contains(&age) {
            9.0 // true nearest: per-column diff 1 ⇒ D = 4, LB = 4 (tight)
        } else if (32..48).contains(&age) {
            // decoy: alternating −80/100 straddles the query envelope, so its
            // block gap — and with it the lower bound — is exactly 0, while
            // the exact D is 360 (|diff| = 90 in every column).
            if age.is_multiple_of(2) {
                100.0
            } else {
                -80.0
            }
        } else {
            -80.0 // background: gap 90 ⇒ LB = D = 360
        };
        // The target is a ramp (distinct value at every age) so different
        // anchors produce different imputed values; its newest value is the
        // missing one being imputed.
        let target = if age == 0 {
            None
        } else {
            Some(t as f64 * 0.25)
        };
        let values = vec![target, Some(reference)];
        window
            .push_tick(&StreamTick::new(Timestamp::new(t as i64), values.clone()))
            .expect("tick accepted");
        index.on_push(&values).expect("push accepted");
    }
    (window, index, imputer)
}

/// With the true bound (factor 1) the pruned path matches the exhaustive
/// path bit for bit; with a deliberately inflated — hence inadmissible —
/// bound the true nearest candidate is pruned away and the imputed value
/// visibly changes.  This is the negative control of the equivalence suite:
/// if over-pruning ever happens, these comparisons are what catches it.
#[test]
fn inflated_bounds_are_caught_by_the_equivalence_check() {
    let (window, index, imputer) = inadmissible_fixture();
    let target = SeriesId(0);
    let refs = vec![SeriesId(1)];

    let exact = imputer.impute(&window, target, &refs).unwrap();
    let (pruned, _) = imputer
        .impute_pruned(&window, target, &refs, &index)
        .unwrap();
    assert_eq!(
        pruned.value.to_bits(),
        exact.value.to_bits(),
        "admissible bounds must reproduce the exhaustive answer bitwise"
    );
    assert_eq!(pruned.anchors, exact.anchors);

    let (inflated, stats) = imputer
        .impute_pruned_with_inflation(&window, target, &refs, &index, 1e6)
        .unwrap();
    assert!(
        stats.pruned > 0,
        "the inflated bound must actually prune candidates: {stats:?}"
    );
    assert_ne!(
        inflated.anchors, exact.anchors,
        "an inadmissible bound prunes the true nearest candidate, so the \
         equivalence check must observe a different anchor set"
    );
    assert_ne!(
        inflated.value.to_bits(),
        exact.value.to_bits(),
        "…and a different imputed value"
    );
}

/// The composed path's negative control, at both bound levels.  On the same
/// fixture: (1) with admissible bounds the composed path — cold shortlist
/// *and* warm shortlist — reproduces the exhaustive answer bitwise; (2) an
/// inflated level-1 *run* bound prunes the whole run holding the true
/// nearest candidate, which the equivalence comparison catches; (3) so does
/// an inflated level-0 bound.  This proves over-pruning at either level of
/// the composed cascade is observable, not silently absorbed.
#[test]
fn inflated_level1_union_bounds_are_caught_by_the_equivalence_check() {
    let (window, index, imputer) = inadmissible_fixture();
    let target = SeriesId(0);
    let refs = vec![SeriesId(1)];
    let l = imputer.config().pattern_length;
    let run_len = level1_run_len(l);
    let mk_shortlist = || {
        let mut s =
            ShortlistMaintainer::new(refs.clone(), l, imputer.config().window_length, false)
                .unwrap();
        s.advance(&window).unwrap();
        s
    };

    let exact = imputer.impute(&window, target, &refs).unwrap();

    // Positive control, cold then warm: the first composed call seeds the
    // shortlist from its own exact evaluations; the second call runs the
    // maintained-first seeding path.  Both must match exhaustive bitwise.
    let mut shortlist = mk_shortlist();
    for pass in ["cold", "warm"] {
        let (composed, _) = imputer
            .impute_composed(&window, target, &refs, &index, &mut shortlist, run_len)
            .unwrap();
        assert_eq!(
            composed.value.to_bits(),
            exact.value.to_bits(),
            "{pass} composed pass must reproduce the exhaustive answer bitwise"
        );
        assert_eq!(composed.anchors, exact.anchors, "{pass} pass anchors");
    }
    assert!(shortlist.maintained_lags() > 0, "evaluations seed entries");

    // Negative control at level 1: inflating only the *run* bound prunes
    // the run containing the true nearest candidate wholesale.
    let mut shortlist = mk_shortlist();
    let (inflated, stats) = imputer
        .impute_composed_with_inflation(
            &window,
            target,
            &refs,
            &index,
            &mut shortlist,
            run_len,
            1.0,
            1e6,
        )
        .unwrap();
    assert!(
        stats.level1_skipped > 0,
        "the inflated run bound must skip whole runs: {stats:?}"
    );
    assert_ne!(
        inflated.anchors, exact.anchors,
        "an inadmissible level-1 union bound prunes the true nearest run, so \
         the equivalence check must observe a different anchor set"
    );
    assert_ne!(inflated.value.to_bits(), exact.value.to_bits());

    // Negative control at level 0: same fixture, inflation on the per-lag
    // bound instead.
    let mut shortlist = mk_shortlist();
    let (inflated0, stats0) = imputer
        .impute_composed_with_inflation(
            &window,
            target,
            &refs,
            &index,
            &mut shortlist,
            run_len,
            1e6,
            1.0,
        )
        .unwrap();
    assert!(
        stats0.pruned > 0,
        "inflated level-0 bounds prune: {stats0:?}"
    );
    assert_ne!(
        inflated0.anchors, exact.anchors,
        "an inadmissible level-0 bound is caught through the composed path too"
    );
}
