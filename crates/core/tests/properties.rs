//! Property-based tests for the TKCM core invariants.

use proptest::prelude::*;

use tkcm_core::{
    select_anchors_dp, select_anchors_greedy, Dissimilarity, L2Distance, Pattern, TkcmConfig,
    TkcmImputer,
};
use tkcm_timeseries::{SeriesId, StreamTick, StreamingWindow, Timestamp};

proptest! {
    /// The DP selection never produces overlapping anchors and never does
    /// worse (in total dissimilarity) than the greedy heuristic.
    #[test]
    fn dp_selection_is_valid_and_at_least_as_good_as_greedy(
        dissimilarities in proptest::collection::vec(0.0f64..100.0, 1..40),
        l in 1usize..6,
        k in 1usize..6,
    ) {
        let dp = select_anchors_dp(&dissimilarities, l, k);
        let greedy = select_anchors_greedy(&dissimilarities, l, k);

        // Non-overlap and bounds.
        for w in dp.indices.windows(2) {
            prop_assert!(w[1] - w[0] >= l, "overlapping anchors {:?}", dp.indices);
        }
        for &idx in &dp.indices {
            prop_assert!(idx < dissimilarities.len());
        }
        prop_assert!(dp.indices.len() <= k);

        // Optimality relative to greedy whenever both select the same count.
        if dp.indices.len() == greedy.indices.len() {
            prop_assert!(dp.total_dissimilarity <= greedy.total_dissimilarity + 1e-9,
                "dp {} > greedy {}", dp.total_dissimilarity, greedy.total_dissimilarity);
        }
        // The DP never selects fewer candidates than greedy managed to.
        prop_assert!(dp.indices.len() >= greedy.indices.len());

        // Reported total matches the sum of the selected dissimilarities.
        let sum: f64 = dp.indices.iter().map(|&i| dissimilarities[i]).sum();
        prop_assert!((sum - dp.total_dissimilarity).abs() < 1e-9);
    }

    /// The L2 pattern dissimilarity is a symmetric, non-negative function
    /// that is zero exactly on identical patterns and monotone in the
    /// pattern length (Lemma 5.1).
    #[test]
    fn l2_dissimilarity_properties(
        a in proptest::collection::vec(-50.0f64..50.0, 2..12),
        b in proptest::collection::vec(-50.0f64..50.0, 2..12),
    ) {
        let n = a.len().min(b.len());
        let a = &a[..n];
        let b = &b[..n];
        let pa = Pattern::from_rows(Timestamp::new(0), &[a.to_vec()]);
        let pb = Pattern::from_rows(Timestamp::new(0), &[b.to_vec()]);
        let d = L2Distance.distance(&pa, &pb);
        prop_assert!(d >= 0.0);
        prop_assert!((d - L2Distance.distance(&pb, &pa)).abs() < 1e-12);
        prop_assert_eq!(L2Distance.distance(&pa, &pa), 0.0);

        // Monotonicity in pattern length: the distance of the length-(n-1)
        // prefix patterns is never larger than the full-length distance.
        if n > 2 {
            let pa_short = Pattern::from_rows(Timestamp::new(0), &[a[1..].to_vec()]);
            let pb_short = Pattern::from_rows(Timestamp::new(0), &[b[1..].to_vec()]);
            let d_short = L2Distance.distance(&pa_short, &pb_short);
            prop_assert!(d_short <= d + 1e-9, "short {} > long {}", d_short, d);
        }
    }

    /// The imputed value always lies within the range of the target's
    /// observed history (it is an average of past values of the series), and
    /// Lemma 5.2 holds: the imputation is consistent wrt. its own anchors.
    #[test]
    fn imputed_value_is_a_convex_combination_of_history(
        seed_values in proptest::collection::vec(-10.0f64..10.0, 40..80),
        l in 1usize..4,
        k in 1usize..4,
    ) {
        let len = seed_values.len();
        let mut window = StreamingWindow::new(2, len);
        for (t, v) in seed_values.iter().enumerate() {
            let target = if t == len - 1 { None } else { Some(*v) };
            // Reference is a deterministic function of the value so patterns repeat.
            let reference = Some(v * 0.5 + 1.0);
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![target, reference]))
                .unwrap();
        }
        let config = TkcmConfig::builder()
            .window_length(len)
            .pattern_length(l)
            .anchor_count(k)
            .reference_count(1)
            .build()
            .unwrap();
        let imputer = TkcmImputer::new(config).unwrap();
        let detail = imputer.impute(&window, SeriesId(0), &[SeriesId(1)]).unwrap();

        let observed = &seed_values[..len - 1];
        let min = observed.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = observed.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(detail.value >= min - 1e-9 && detail.value <= max + 1e-9,
            "imputed {} outside history range [{min}, {max}]", detail.value);
        if !detail.anchors.is_empty() {
            prop_assert!(detail.consistency().is_consistent());
        }
    }
}
