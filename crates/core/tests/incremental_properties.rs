//! Property tests for the Section 6.2 incremental dissimilarity maintenance:
//! the maintained `D[j]` must equal a from-scratch recompute (within
//! floating-point epsilon) across random streams with gaps, random missing
//! blocks, imputed write-backs and ring-buffer wrap-around.

use proptest::prelude::*;

use tkcm_core::{
    extract_pattern, extract_query_pattern, Dissimilarity, IncrementalDissimilarity, L2Distance,
    TkcmConfig, TkcmEngine,
};
use tkcm_timeseries::{Catalog, SeriesId, StreamTick, StreamingWindow, Timestamp};

/// From-scratch `D` at one candidate lag, computed exactly like the exact
/// imputer path: pattern extraction plus the L2 distance of Definition 2.
fn from_scratch_d(
    window: &StreamingWindow,
    refs: &[SeriesId],
    l: usize,
    lag: usize,
    allow_missing: bool,
) -> f64 {
    let now = window.current_time().unwrap();
    let Some(query) = extract_query_pattern(window, refs, l, allow_missing).unwrap() else {
        return f64::INFINITY;
    };
    match extract_pattern(window, refs, now - lag as i64, l, allow_missing).unwrap() {
        Some(candidate) => L2Distance.distance(&candidate, &query),
        None => f64::INFINITY,
    }
}

fn assert_state_matches(
    state: &IncrementalDissimilarity,
    window: &StreamingWindow,
    refs: &[SeriesId],
    l: usize,
    allow_missing: bool,
) -> Result<(), String> {
    let filled = window.filled();
    if filled < 2 * l {
        return Ok(());
    }
    for lag in l..=(filled - l) {
        let exact = from_scratch_d(window, refs, l, lag, allow_missing);
        let inc = state.dissimilarity_at_lag(lag);
        if exact.is_infinite() {
            prop_assert!(
                inc.is_infinite(),
                "lag {lag}: from-scratch inf, incremental {inc}"
            );
        } else {
            prop_assert!(
                (exact - inc).abs() <= 1e-8 * (1.0 + exact.abs()),
                "lag {lag}: from-scratch {exact} vs incremental {inc}"
            );
        }
    }
    Ok(())
}

proptest! {
    /// Random two-series streams with random gaps, replayed for well past
    /// one full window so the ring buffers wrap and evict: after every tick
    /// (and every imputed write-back) the maintained sums must match a
    /// from-scratch recompute in both missing-value modes.
    #[test]
    fn incremental_d_matches_from_scratch_recompute(
        v0 in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 24..120),
        v1 in proptest::collection::vec(proptest::option::of(-100.0f64..100.0), 24..120),
        capacity in 6usize..20,
        l_raw in 1usize..6,
        mode in 0u32..2,
    ) {
        let l = l_raw.min(capacity / 2).max(1);
        let allow_missing = mode == 1;
        let refs = vec![SeriesId(0), SeriesId(1)];
        let mut window = StreamingWindow::new(2, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, allow_missing)
            .expect("valid state parameters");

        let len = v0.len().min(v1.len());
        for t in 0..len {
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![v0[t], v1[t]]))
                .expect("tick accepted");
            state.advance(&window).expect("advance succeeds");
            assert_state_matches(&state, &window, &refs, l, allow_missing)?;

            // Mimic the engine's write-back: when the current value of a
            // reference is missing, impute *something* and patch the state.
            for (i, v) in [v0[t], v1[t]].into_iter().enumerate() {
                if v.is_none() && t % 3 != 0 {
                    let id = SeriesId::from(i);
                    window
                        .write_imputed(id, 0, (t as f64) * 0.37 - i as f64)
                        .expect("write accepted");
                    state
                        .on_write(&window, id, 0, None)
                        .expect("on_write succeeds");
                }
            }
            assert_state_matches(&state, &window, &refs, l, allow_missing)?;
        }
    }

    /// Historical write-backs at arbitrary ages (not just the engine's
    /// age-0 write) are patched correctly too.
    #[test]
    fn incremental_d_survives_historical_writes(
        values in proptest::collection::vec(proptest::option::of(-50.0f64..50.0), 30..90),
        capacity in 8usize..16,
        l_raw in 1usize..5,
        write_ages in proptest::collection::vec(0usize..16, 1..6),
    ) {
        let l = l_raw.min(capacity / 2).max(1);
        let refs = vec![SeriesId(0)];
        let mut window = StreamingWindow::new(1, capacity);
        let mut state = IncrementalDissimilarity::new(refs.clone(), l, capacity, true)
            .expect("valid state parameters");

        for (t, v) in values.iter().enumerate() {
            window
                .push_tick(&StreamTick::new(Timestamp::new(t as i64), vec![*v]))
                .expect("tick accepted");
            state.advance(&window).expect("advance succeeds");
        }
        for (i, &age) in write_ages.iter().enumerate() {
            let age = age % window.filled();
            let old = window.value_recent(SeriesId(0), age).expect("valid age");
            window
                .write_imputed(SeriesId(0), age, i as f64 * 1.3 - 2.0)
                .expect("write accepted");
            state
                .on_write(&window, SeriesId(0), age, old)
                .expect("on_write succeeds");
            assert_state_matches(&state, &window, &refs, l, true)?;
        }
    }

    /// End to end: an engine with incremental maintenance and an engine on
    /// the exact recompute path impute the same values on the same stream
    /// (same missing slots, same skipped series, values equal to float
    /// tolerance), including long outages where imputed history feeds later
    /// patterns.
    #[test]
    fn engine_incremental_equals_exact_recompute(
        period in 8.0f64..40.0,
        shift1 in 1.0f64..10.0,
        shift2 in 1.0f64..10.0,
        gap_start_frac in 0.3f64..0.8,
        gap_len in 3usize..20,
        capacity in 48usize..96,
    ) {
        let width = 3;
        let total = capacity * 2; // wrap the ring at least once
        let gap_start = (total as f64 * gap_start_frac) as usize;
        let l = 3;
        // This property contrasts the PR-2 incremental path with the exact
        // recompute path, so signature pruning (which replaces maintainers
        // entirely) is switched off for both engines.
        let base = TkcmConfig::builder()
            .window_length(capacity)
            .pattern_length(l)
            .anchor_count(3)
            .reference_count(2)
            .pruning(false)
            .build()
            .unwrap();
        let exact_config = TkcmConfig::builder()
            .incremental(false)
            .window_length(capacity)
            .pattern_length(l)
            .anchor_count(3)
            .reference_count(2)
            .pruning(false)
            .build()
            .unwrap();
        prop_assert!(base.incremental);
        prop_assert!(!exact_config.incremental);

        let catalog = Catalog::ring_neighbours(width);
        let mut inc_engine = TkcmEngine::new(width, base, catalog.clone()).unwrap();
        let mut exact_engine = TkcmEngine::new(width, exact_config, catalog).unwrap();
        prop_assert!(inc_engine.is_incremental());
        prop_assert!(!exact_engine.is_incremental());

        let wave = |t: usize, shift: f64| {
            ((t as f64 - shift) / period * std::f64::consts::TAU).sin() * 10.0
                + (t as f64) * 1e-3 // slight drift to break exact ties
        };
        let mut max_maintainers = 0usize;
        for t in 0..total {
            let s0_missing = (gap_start..gap_start + gap_len).contains(&t);
            let s1_missing = t % 17 == 5;
            let tick = StreamTick::new(
                Timestamp::new(t as i64),
                vec![
                    if s0_missing { None } else { Some(wave(t, 0.0)) },
                    if s1_missing { None } else { Some(wave(t, shift1)) },
                    Some(wave(t, shift2)),
                ],
            );
            let inc = inc_engine.process_tick(&tick).unwrap();
            let exact = exact_engine.process_tick(&tick).unwrap();

            prop_assert_eq!(&inc.skipped, &exact.skipped);
            prop_assert_eq!(inc.imputations.len(), exact.imputations.len());
            for (a, b) in inc.imputations.iter().zip(exact.imputations.iter()) {
                prop_assert_eq!(a.series, b.series);
                prop_assert_eq!(a.time, b.time);
                prop_assert!(
                    (a.value - b.value).abs() <= 1e-6 * (1.0 + b.value.abs()),
                    "tick {}: incremental {} vs exact {}",
                    t,
                    a.value,
                    b.value
                );
                prop_assert_eq!(a.detail.fallback, b.detail.fallback);
            }
            max_maintainers = max_maintainers.max(inc_engine.maintainer_count());
        }
        prop_assert_eq!(
            inc_engine.imputations_performed(),
            exact_engine.imputations_performed()
        );
        // Maintained states appear on demand on the incremental engine (and
        // may be evicted again after 2l idle ticks); the exact engine never
        // creates any.
        prop_assert!(max_maintainers >= 1);
        prop_assert_eq!(exact_engine.maintainer_count(), 0);
    }
}
