//! Export encoders: Prometheus-style text exposition and hand-rolled JSON.
//!
//! Both encoders render a [`Registry`] snapshot; they are pure functions of
//! the snapshot (encode-only, deterministic order — the registry map is a
//! `BTreeMap`), so successive scrapes of an idle process are byte-identical.

use crate::metrics::{MetricSnapshot, Registry, SnapshotValue};

/// Renders the registry as Prometheus text exposition: one `# TYPE` line
/// per metric name, counters/gauges as plain samples, histograms as
/// summary-style quantile samples plus `_sum` / `_count`.
pub fn render_prometheus(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::new();
    let mut last_name = "";
    for metric in &snapshot {
        if metric.name != last_name {
            let kind = match metric.value {
                SnapshotValue::Counter(_) => "counter",
                SnapshotValue::Gauge(_) => "gauge",
                SnapshotValue::Histogram(_) => "summary",
            };
            out.push_str(&format!("# TYPE {} {kind}\n", metric.name));
            last_name = metric.name;
        }
        match &metric.value {
            SnapshotValue::Counter(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    metric.name,
                    label_block(metric, None)
                ));
            }
            SnapshotValue::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    metric.name,
                    label_block(metric, None)
                ));
            }
            SnapshotValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                    out.push_str(&format!(
                        "{}{} {v}\n",
                        metric.name,
                        label_block(metric, Some(q))
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    metric.name,
                    label_block(metric, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    metric.name,
                    label_block(metric, None),
                    h.count
                ));
            }
        }
    }
    out
}

/// The `{key="value",…}` label block of a sample, with an optional
/// `quantile` label appended; empty string when there are no labels.
fn label_block(metric: &MetricSnapshot, quantile: Option<&str>) -> String {
    let mut pairs: Vec<String> = metric
        .labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape(v)))
        .collect();
    if let Some(q) = quantile {
        pairs.push(format!("quantile=\"{q}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the registry as a JSON document:
/// `{"metrics": [{"name": …, "labels": {…}, "kind": …, …}, …]}`.
pub fn render_json(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::from("{\n  \"metrics\": [\n");
    for (i, metric) in snapshot.iter().enumerate() {
        let labels: Vec<String> = metric
            .labels
            .iter()
            .map(|(k, v)| format!("\"{k}\": \"{}\"", escape(v)))
            .collect();
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"labels\": {{{}}}, ",
            metric.name,
            labels.join(", ")
        ));
        match &metric.value {
            SnapshotValue::Counter(v) => {
                out.push_str(&format!("\"kind\": \"counter\", \"value\": {v}}}"));
            }
            SnapshotValue::Gauge(v) if v.is_finite() => {
                out.push_str(&format!("\"kind\": \"gauge\", \"value\": {v}}}"));
            }
            SnapshotValue::Gauge(_) => {
                out.push_str("\"kind\": \"gauge\", \"value\": null}");
            }
            SnapshotValue::Histogram(h) => {
                out.push_str(&format!(
                    "\"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \
                     \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                    h.count, h.sum, h.p50, h.p90, h.p99
                ));
            }
        }
        if i + 1 < snapshot.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escapes a label value for both exposition formats (quote, backslash,
/// newline — the shared subset of the two grammars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry
            .counter("tkcm_test_batches_total", &[("shard", "0")])
            .add(5);
        registry
            .counter("tkcm_test_batches_total", &[("shard", "1")])
            .add(7);
        registry.gauge("tkcm_test_ewma_nanos", &[]).set(1250.5);
        let h = registry.histogram("tkcm_test_latency_nanos", &[]);
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        registry
    }

    #[test]
    fn prometheus_exposition_has_types_labels_and_quantiles() {
        let _guard = crate::tests::enabled_lock();
        let text = render_prometheus(&sample_registry());
        assert!(text.contains("# TYPE tkcm_test_batches_total counter"));
        // One TYPE line even with two label sets.
        assert_eq!(text.matches("# TYPE tkcm_test_batches_total").count(), 1);
        assert!(text.contains("tkcm_test_batches_total{shard=\"0\"} 5"));
        assert!(text.contains("tkcm_test_batches_total{shard=\"1\"} 7"));
        assert!(text.contains("# TYPE tkcm_test_ewma_nanos gauge"));
        assert!(text.contains("tkcm_test_ewma_nanos 1250.5"));
        assert!(text.contains("# TYPE tkcm_test_latency_nanos summary"));
        assert!(text.contains("tkcm_test_latency_nanos{quantile=\"0.5\"} 3"));
        assert!(text.contains("tkcm_test_latency_nanos_count 5"));
        assert!(text.contains("tkcm_test_latency_nanos_sum 110"));
    }

    #[test]
    fn json_export_carries_kinds_and_percentiles() {
        let _guard = crate::tests::enabled_lock();
        let json = render_json(&sample_registry());
        assert!(json.contains(
            "{\"name\": \"tkcm_test_batches_total\", \"labels\": {\"shard\": \"0\"}, \
             \"kind\": \"counter\", \"value\": 5}"
        ));
        assert!(json.contains("\"kind\": \"gauge\", \"value\": 1250.5"));
        assert!(json.contains("\"kind\": \"histogram\", \"count\": 5, \"sum\": 110"));
        assert!(json.contains("\"p50\": 3"));
    }

    #[test]
    fn label_values_are_escaped() {
        let _guard = crate::tests::enabled_lock();
        let registry = Registry::new();
        registry
            .counter("tkcm_test_esc_total", &[("path", "a\"b\\c")])
            .inc();
        let text = render_prometheus(&registry);
        assert!(text.contains("path=\"a\\\"b\\\\c\""), "{text}");
        let json = render_json(&registry);
        assert!(json.contains("\"path\": \"a\\\"b\\\\c\""), "{json}");
    }
}
