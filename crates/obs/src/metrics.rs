//! The metrics registry: counters, gauges and log-scale histograms.
//!
//! Registration (`registry.counter(name, labels)`) takes a mutex once and
//! hands back a cheap cloneable handle; every subsequent recording is one
//! relaxed atomic RMW, so the hot paths of the engine, the fleet and the
//! store never contend on a lock.  Reads (`value`, `quantile`, `snapshot`)
//! are relaxed atomic loads — approximate under concurrent writers, exact
//! once writers quiesce — and never stop recording.
//!
//! Histograms use fixed log-scale buckets: values 0–7 get exact buckets,
//! larger values are bucketed by octave with 8 sub-buckets each, giving a
//! worst-case relative quantile error of 12.5 % over the full `u64` range
//! with a constant 496-slot footprint.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Exact buckets for values below `1 << EXACT_BITS`.
const EXACT_BITS: usize = 3;
/// Sub-buckets per octave above the exact range.
const SUB_BUCKETS: usize = 1 << EXACT_BITS;
/// Total bucket count: 8 exact + 8 per octave for octaves 3..=63.
pub const HISTOGRAM_BUCKETS: usize = SUB_BUCKETS + (64 - EXACT_BITS) * SUB_BUCKETS;

/// Bucket index of `value` (total order, stable across processes).
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (msb - EXACT_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (msb - EXACT_BITS) * SUB_BUCKETS + sub
    }
}

/// `[low, high)` value bounds of bucket `index`.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS {
        (index as u64, index as u64 + 1)
    } else {
        let octave = (index - SUB_BUCKETS) / SUB_BUCKETS + EXACT_BITS;
        let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u64;
        let step = 1u64 << (octave - EXACT_BITS);
        let low = (1u64 << octave) + sub * step;
        (low, low.saturating_add(step))
    }
}

/// Representative value reported for bucket `index` (its midpoint).
fn bucket_representative(index: usize) -> u64 {
    let (low, high) = bucket_bounds(index);
    low + (high - low - 1) / 2
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`; a no-op while recording is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (read-side; never called from imputation logic).
    pub fn value(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge holding an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge; a no-op while recording is disabled.
    pub fn set(&self, value: f64) {
        if crate::enabled() {
            self.bits.store(value.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (read-side; never called from imputation logic).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket log-scale histogram of `u64` samples (typically
/// nanoseconds or bytes).
#[derive(Clone, Debug)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            cells: Arc::new(HistogramCells {
                buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one sample; a no-op while recording is disabled.
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        self.cells.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.cells.count.fetch_add(1, Ordering::Relaxed);
        self.cells.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating).
    pub fn record_duration(&self, duration: std::time::Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples (read-side).
    pub fn observed_count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (read-side).
    pub fn observed_sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded samples, as the
    /// midpoint of the bucket the quantile falls in — within 12.5 % of the
    /// exact order statistic.  Returns 0 with no samples.  Read-side:
    /// concurrent writers make the answer approximate, never wrong by more
    /// than the in-flight samples.
    pub fn quantile(&self, q: f64) -> u64 {
        let loaded: Vec<u64> = self
            .cells
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        quantile_of(&loaded, q)
    }

    /// A point-in-time copy of the bucket counts, for later
    /// [`delta_since`](Histogram::checkpoint) arithmetic.  The registry is
    /// process-global and cumulative, so per-interval quantiles (one bench
    /// run, one report window) need a baseline to subtract; this is it.
    pub fn checkpoint(&self) -> HistogramCheckpoint {
        HistogramCheckpoint {
            buckets: self
                .cells
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// The samples recorded since `base` was checkpointed from this same
    /// histogram (read-side; approximate under concurrent writers).
    pub fn delta_since(&self, base: &HistogramCheckpoint) -> HistogramDelta {
        let mut count = 0u64;
        let buckets: Vec<u64> = self
            .cells
            .buckets
            .iter()
            .zip(&base.buckets)
            .map(|(now, then)| {
                let d = now.load(Ordering::Relaxed).saturating_sub(*then);
                count += d;
                d
            })
            .collect();
        HistogramDelta { buckets, count }
    }
}

/// The `q`-quantile over plain bucket counts (midpoint-of-bucket, like
/// [`Histogram::quantile`]).  Returns 0 when the counts are all zero.
fn quantile_of(buckets: &[u64], q: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
    let mut cumulative = 0u64;
    let mut last_nonempty = 0usize;
    for (index, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        cumulative += n;
        last_nonempty = index;
        if cumulative >= target {
            return bucket_representative(index);
        }
    }
    bucket_representative(last_nonempty)
}

/// A point-in-time copy of one histogram's bucket counts — the baseline
/// for per-interval quantiles over the cumulative global registry.
#[derive(Clone, Debug)]
pub struct HistogramCheckpoint {
    buckets: Vec<u64>,
}

/// Samples a histogram gained since a [`HistogramCheckpoint`], mergeable
/// across histograms (e.g. every shard of one fleet run) before taking a
/// quantile.  Strictly read-side, like every other metric read.
#[derive(Clone, Debug)]
pub struct HistogramDelta {
    buckets: Vec<u64>,
    count: u64,
}

impl Default for HistogramDelta {
    fn default() -> Self {
        HistogramDelta {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
        }
    }
}

impl HistogramDelta {
    /// Number of samples in the delta.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another delta's samples into this one.
    pub fn merge(&mut self, other: &HistogramDelta) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
    }

    /// The `q`-quantile of the delta, bucket-midpoint like
    /// [`Histogram::quantile`]; 0 when the delta is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        quantile_of(&self.buckets, q)
    }
}

/// One label: static key, owned value (`("shard", "2")`).
pub type Label = (&'static str, String);

/// A point-in-time view of one registered metric.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name.
    pub name: &'static str,
    /// Label set, sorted by key.
    pub labels: Vec<Label>,
    /// The metric's value at snapshot time.
    pub value: SnapshotValue,
}

/// The value half of a [`MetricSnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram summary.
    Histogram(HistogramSnapshot),
}

/// Summary of a histogram at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

#[derive(Clone, Debug)]
enum MetricHandle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl MetricHandle {
    fn kind(&self) -> &'static str {
        match self {
            MetricHandle::Counter(_) => "counter",
            MetricHandle::Gauge(_) => "gauge",
            MetricHandle::Histogram(_) => "histogram",
        }
    }
}

/// The metrics registry: `(name, labels) → metric`, with the map behind a
/// mutex (touched at registration and snapshot time only — recording goes
/// through the atomic handles).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<(&'static str, Vec<Label>), MetricHandle>>,
}

impl Registry {
    /// An empty registry (tests; production code uses [`crate::registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<(&'static str, Vec<Label>), MetricHandle>> {
        // Mutex poisoning cannot corrupt a map of atomic handles; recover.
        self.metrics.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn owned_labels(labels: &[(&'static str, &str)]) -> Vec<Label> {
        let mut owned: Vec<Label> = labels.iter().map(|(k, v)| (*k, v.to_string())).collect();
        owned.sort();
        owned
    }

    /// Registers (or retrieves) the counter `name` + `labels`.
    ///
    /// # Panics
    /// If the same name + labels was registered as a different metric kind —
    /// a programming error, caught at registration (the cold path).
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let key = (name, Self::owned_labels(labels));
        let mut map = self.lock();
        let handle = map
            .entry(key)
            .or_insert_with(|| MetricHandle::Counter(Counter::default()));
        match handle {
            MetricHandle::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) the gauge `name` + `labels` (panics on a
    /// kind mismatch, like [`Registry::counter`]).
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let key = (name, Self::owned_labels(labels));
        let mut map = self.lock();
        let handle = map
            .entry(key)
            .or_insert_with(|| MetricHandle::Gauge(Gauge::default()));
        match handle {
            MetricHandle::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// Registers (or retrieves) the histogram `name` + `labels` (panics on a
    /// kind mismatch, like [`Registry::counter`]).
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        let key = (name, Self::owned_labels(labels));
        let mut map = self.lock();
        let handle = map
            .entry(key)
            .or_insert_with(|| MetricHandle::Histogram(Histogram::default()));
        match handle {
            MetricHandle::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as a {}", other.kind()),
        }
    }

    /// A point-in-time view of every registered metric, sorted by name then
    /// labels (read-side; feeds the export encoders).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let map = self.lock();
        map.iter()
            .map(|((name, labels), handle)| MetricSnapshot {
                name,
                labels: labels.clone(),
                value: match handle {
                    MetricHandle::Counter(c) => SnapshotValue::Counter(c.value()),
                    MetricHandle::Gauge(g) => SnapshotValue::Gauge(g.value()),
                    MetricHandle::Histogram(h) => SnapshotValue::Histogram(HistogramSnapshot {
                        count: h.observed_count(),
                        sum: h.observed_sum(),
                        p50: h.quantile(0.50),
                        p90: h.quantile(0.90),
                        p99: h.quantile(0.99),
                    }),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_index_and_bounds_partition_u64() {
        // Exact low range.
        for v in 0..8u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
        // Bucket bounds tile the space: each bucket's high is the next low.
        let mut previous_high = 0u64;
        for index in 0..HISTOGRAM_BUCKETS {
            let (low, high) = bucket_bounds(index);
            assert_eq!(low, previous_high, "gap before bucket {index}");
            assert!(high > low || high == u64::MAX);
            previous_high = high;
        }
        // Every probe value maps into a bucket whose bounds contain it.
        for exp in 0..64 {
            for delta in [0i64, 1, -1, 3] {
                let v = (1u128 << exp).wrapping_add_signed(delta as i128);
                let Ok(v) = u64::try_from(v) else { continue };
                let (low, high) = bucket_bounds(bucket_index(v));
                assert!(low <= v && (v < high || high == u64::MAX), "{v}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_within_the_bucket_resolution() {
        let _guard = crate::tests::enabled_lock();
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.observed_count(), 1000);
        assert_eq!(h.observed_sum(), 500_500);
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q) as f64;
            let err = (got - exact).abs() / exact;
            assert!(err <= 0.125, "q{q}: got {got}, exact {exact}");
        }
        assert_eq!(Histogram::default().quantile(0.5), 0);
    }

    #[test]
    fn registry_reuses_handles_and_snapshots_sorted() {
        let _guard = crate::tests::enabled_lock();
        let registry = Registry::new();
        let a = registry.counter("tkcm_test_b_total", &[("shard", "1")]);
        let b = registry.counter("tkcm_test_b_total", &[("shard", "1")]);
        a.add(2);
        b.inc();
        assert_eq!(a.value(), 3);
        registry.gauge("tkcm_test_a_gauge", &[]).set(1.5);
        registry.histogram("tkcm_test_c_nanos", &[]).record(7);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "tkcm_test_a_gauge",
                "tkcm_test_b_total",
                "tkcm_test_c_nanos"
            ]
        );
        assert_eq!(snapshot[1].value, SnapshotValue::Counter(3));
        assert_eq!(snapshot[1].labels, vec![("shard", "1".to_string())]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics_at_registration() {
        let registry = Registry::new();
        registry.counter("tkcm_test_kind", &[]);
        registry.gauge("tkcm_test_kind", &[]);
    }

    /// Satellite: 8 threads hammer one counter and one histogram; totals
    /// must sum exactly (atomics lose nothing).
    #[test]
    fn eight_thread_stress_sums_exactly() {
        let _guard = crate::tests::enabled_lock();
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 50_000;
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("tkcm_test_stress_total", &[]);
        let histogram = registry.histogram("tkcm_test_stress_nanos", &[]);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let counter = counter.clone();
                let histogram = histogram.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        counter.inc();
                        histogram.record(t * PER_THREAD + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(counter.value(), THREADS * PER_THREAD);
        assert_eq!(histogram.observed_count(), THREADS * PER_THREAD);
        // Sum of 0..400_000.
        let n = THREADS * PER_THREAD;
        assert_eq!(histogram.observed_sum(), n * (n - 1) / 2);
    }

    /// Checkpoint/delta arithmetic isolates one interval of a cumulative
    /// histogram and merges across histograms, as the bench sweeps use it.
    #[test]
    fn checkpoint_deltas_isolate_intervals_and_merge() {
        let _guard = crate::tests::enabled_lock();
        let registry = Registry::new();
        let a = registry.histogram("tkcm_test_delta_nanos", &[("shard", "0")]);
        let b = registry.histogram("tkcm_test_delta_nanos", &[("shard", "1")]);
        // A polluting earlier interval: huge samples that must not leak
        // into the measured window.
        for _ in 0..100 {
            a.record(1_000_000);
        }
        let base_a = a.checkpoint();
        let base_b = b.checkpoint();
        for _ in 0..30 {
            a.record(100);
        }
        for _ in 0..10 {
            b.record(6_400);
        }
        let mut delta = a.delta_since(&base_a);
        assert_eq!(delta.count(), 30);
        // The old million-nanosecond samples are gone from the window.
        assert!(delta.quantile(0.99) < 200, "{}", delta.quantile(0.99));
        delta.merge(&b.delta_since(&base_b));
        assert_eq!(delta.count(), 40);
        // p50 stays in the 100-cluster, p99 lands in the 6400-cluster
        // (bucket midpoints, so compare with the 12.5 % bucket tolerance).
        let p50 = delta.quantile(0.5);
        let p99 = delta.quantile(0.99);
        assert!((90..=115).contains(&p50), "{p50}");
        assert!((5_600..=7_200).contains(&p99), "{p99}");
        // An empty delta reports zero.
        assert_eq!(b.delta_since(&b.checkpoint()).quantile(0.5), 0);
        assert_eq!(HistogramDelta::default().count(), 0);
    }
}
