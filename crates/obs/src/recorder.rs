//! The flight recorder: a bounded ring of recent structured events.
//!
//! Writers claim a slot with one atomic `fetch_add` on the ring cursor —
//! writers on different slots never contend — and publish the event under
//! that slot's own mutex (a per-slot lock, not a global one; the workspace
//! forbids `unsafe`, so a seqlock over non-atomic payloads is off the
//! table).  The ring keeps the last `capacity` events; older events are
//! overwritten, which is the point: when the fleet poisons, the recorder
//! holds the moments *before* the crash.
//!
//! Dumps are encode-only (`render_json`, [`FlightRecorder::dump_to_dir`]):
//! the recorder never reads a dump back, so the decode-hygiene policy does
//! not apply to this path (see ROADMAP standing policies).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One typed field value of an [`Event`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text.
    Text(String),
}

impl FieldValue {
    fn render_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Text(v) => {
                out.push('"');
                out.push_str(&escape_json(v));
                out.push('"');
            }
        }
    }
}

/// One structured event in the ring.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch at record time.
    pub unix_micros: u64,
    /// Event kind (`"span"`, `"batch_drained"`, `"wal_fsync_failed"`, …).
    pub kind: &'static str,
    /// Typed key/value payload.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// The bounded event ring.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<Event>>>,
    cursor: AtomicU64,
}

impl FlightRecorder {
    /// A recorder keeping the most recent `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Records one event; a no-op while recording is disabled.  Claiming
    /// the slot is a single `fetch_add`; only two writers landing on the
    /// same slot (one full ring apart) ever touch the same lock.
    pub fn record(&self, kind: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if !crate::enabled() {
            return;
        }
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let unix_micros = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A lapped writer (seq smaller than what the slot already holds)
        // must not roll the ring backwards.
        if slot.as_ref().is_none_or(|held| held.seq < seq) {
            *slot = Some(Event {
                seq,
                unix_micros,
                kind,
                fields,
            });
        }
    }

    /// The retained events, oldest first (read-side).
    pub fn events(&self) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Renders the retained events as a JSON document (encode-only).
    pub fn render_json(&self) -> String {
        let events = self.events();
        let mut out = String::from("{\n  \"events\": [\n");
        for (i, event) in events.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"seq\": {}, \"unix_micros\": {}, \"kind\": \"{}\"",
                event.seq,
                event.unix_micros,
                escape_json(event.kind)
            ));
            for (key, value) in &event.fields {
                out.push_str(&format!(", \"{}\": ", escape_json(key)));
                value.render_json(&mut out);
            }
            out.push('}');
            if i + 1 < events.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the ring as `flight-recorder-<label>-<unix_micros>.json`
    /// under `dir` (created if missing) and returns the path.  Called when
    /// the fleet poisons, when a checkpoint/recovery fails, and on demand.
    pub fn dump_to_dir(&self, dir: &Path, label: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let stamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let path = dir.join(format!("flight-recorder-{label}-{stamp}.json"));
        std::fs::write(&path, self.render_json())?;
        Ok(path)
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_the_newest_events() {
        let _guard = crate::tests::enabled_lock();
        let recorder = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            recorder.record("tick", vec![("i", FieldValue::U64(i))]);
        }
        let events = recorder.events();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest events were overwritten");
        assert_eq!(events[3].fields, vec![("i", FieldValue::U64(9))]);
    }

    #[test]
    fn concurrent_writers_fill_the_ring_consistently() {
        let _guard = crate::tests::enabled_lock();
        let recorder = std::sync::Arc::new(FlightRecorder::with_capacity(64));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let recorder = recorder.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        recorder.record("stress", vec![("v", FieldValue::U64(t * 1000 + i))]);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let events = recorder.events();
        assert_eq!(events.len(), 64);
        // The ring retains exactly the highest 64 sequence numbers.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (8000 - 64..8000).collect::<Vec<u64>>());
    }

    #[test]
    fn json_dump_escapes_and_round_names_the_file() {
        let _guard = crate::tests::enabled_lock();
        let recorder = FlightRecorder::with_capacity(8);
        recorder.record(
            "note",
            vec![
                ("text", FieldValue::Text("a \"quoted\"\nline".to_string())),
                ("neg", FieldValue::I64(-3)),
                ("ratio", FieldValue::F64(0.5)),
                ("nan", FieldValue::F64(f64::NAN)),
            ],
        );
        let json = recorder.render_json();
        assert!(json.contains("\\\"quoted\\\"\\nline"), "{json}");
        assert!(json.contains("\"neg\": -3"), "{json}");
        assert!(json.contains("\"ratio\": 0.5"), "{json}");
        assert!(json.contains("\"nan\": null"), "{json}");

        let dir = std::env::temp_dir().join(format!("tkcm-obs-dump-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = recorder.dump_to_dir(&dir, "test").unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with("flight-recorder-test-"), "{name}");
        assert!(name.ends_with(".json"), "{name}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), json);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
