//! Span tracing: begin/end spans with a per-thread stack.
//!
//! A span is opened with [`crate::span`] (or [`SpanGuard::enter`]) and
//! closed when the guard drops; closing records a `span` event — name,
//! parent span, nesting depth, elapsed nanos — into the global flight
//! recorder.  The stack is thread-local, so spans opened on different
//! worker threads nest independently and cost no synchronization until the
//! single recorder write at close.

use std::cell::RefCell;
use std::time::Instant;

use crate::recorder::FieldValue;

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its event into the global recorder on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    parent: Option<&'static str>,
    depth: usize,
    start: Instant,
}

impl SpanGuard {
    /// Opens a span named `name` on this thread's stack.
    pub fn enter(name: &'static str) -> SpanGuard {
        let (parent, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let parent = stack.last().copied();
            let depth = stack.len();
            stack.push(name);
            (parent, depth)
        });
        SpanGuard {
            name,
            parent,
            depth,
            start: Instant::now(),
        }
    }

    /// The innermost span currently open on this thread, if any.
    pub fn current() -> Option<&'static str> {
        SPAN_STACK.with(|stack| stack.borrow().last().copied())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            // Pop this span.  Guards drop in LIFO order in straight-line
            // code; if a caller leaked an inner guard across an outer drop,
            // truncate to this span's depth rather than corrupt the stack.
            let mut stack = stack.borrow_mut();
            stack.truncate(self.depth);
        });
        if crate::enabled() {
            let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut fields = vec![
                ("name", FieldValue::Text(self.name.to_string())),
                ("depth", FieldValue::U64(self.depth as u64)),
                ("nanos", FieldValue::U64(nanos)),
            ];
            if let Some(parent) = self.parent {
                fields.push(("parent", FieldValue::Text(parent.to_string())));
            }
            crate::recorder().record("span", fields);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_on_a_per_thread_stack() {
        assert_eq!(SpanGuard::current(), None);
        let outer = SpanGuard::enter("outer");
        assert_eq!(SpanGuard::current(), Some("outer"));
        {
            let inner = SpanGuard::enter("inner");
            assert_eq!(inner.parent, Some("outer"));
            assert_eq!(inner.depth, 1);
            assert_eq!(SpanGuard::current(), Some("inner"));
        }
        assert_eq!(SpanGuard::current(), Some("outer"));
        assert_eq!(outer.depth, 0);
        drop(outer);
        assert_eq!(SpanGuard::current(), None);
    }

    #[test]
    fn other_threads_see_an_empty_stack() {
        let _outer = SpanGuard::enter("main-thread-span");
        std::thread::spawn(|| {
            assert_eq!(SpanGuard::current(), None);
            let _inner = SpanGuard::enter("worker-span");
            assert_eq!(SpanGuard::current(), Some("worker-span"));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn closing_a_span_records_an_event() {
        let _guard = crate::tests::enabled_lock();
        drop(SpanGuard::enter("recorded-span"));
        let events = crate::recorder().events();
        assert!(events.iter().any(|e| {
            e.kind == "span"
                && e.fields
                    .iter()
                    .any(|(k, v)| *k == "name" && *v == FieldValue::Text("recorded-span".into()))
        }));
    }
}
