//! # tkcm-obs
//!
//! The workspace's observability substrate: one coherent, dependency-free
//! layer every other crate records into, and two export surfaces the
//! outside world reads from.
//!
//! Three building blocks:
//!
//! 1. **Metrics registry** ([`metrics`]) — counters, gauges and fixed-bucket
//!    log-scale histograms, all updated with relaxed atomics.  Handles are
//!    registered once by static name + label set and then recorded into
//!    without any lock; p50/p90/p99 are readable from the histogram buckets
//!    without stopping writers.
//! 2. **Span tracing** ([`span`]) — lightweight begin/end spans with a
//!    per-thread stack.  Closing a span records a structured event (name,
//!    parent, depth, nanos) into the flight recorder.
//! 3. **Flight recorder** ([`recorder`]) — a bounded ring of recent
//!    structured events (batches, checkpoints, rotations, migrations, WAL
//!    fsyncs, recovery steps, prune summaries).  The runtime dumps it to a
//!    timestamped JSON file whenever the fleet poisons or a checkpoint /
//!    recovery fails, so the last moments before a crash are always
//!    inspectable.
//!
//! Export encoders ([`export`]) render the registry as Prometheus-style
//! text exposition or as the repo's hand-rolled JSON.
//!
//! ## Read-side only
//!
//! Observability is strictly *read-side*: imputation and maintenance logic
//! records values but never reads them back, so every bit-identity
//! equivalence property of the workspace holds verbatim with observability
//! enabled.  The `obs-read-only` rule in `tkcm-lint` mechanizes this for
//! `crates/core`.
//!
//! ## Global handles and the enable switch
//!
//! Most callers use the process-global [`registry()`] and [`recorder()`] so
//! constructors never change signatures; isolated [`metrics::Registry::new`]
//! / [`recorder::FlightRecorder::with_capacity`] instances exist for tests.
//! [`set_enabled`]`(false)` turns every recording operation into a cheap
//! early-out (one relaxed atomic load), which is what the benchmark
//! obs-overhead sweep compares against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

pub use metrics::{Counter, Gauge, Histogram, HistogramCheckpoint, HistogramDelta, Registry};
pub use recorder::{Event, FieldValue, FlightRecorder};
pub use span::SpanGuard;

/// Capacity of the process-global flight recorder: enough for the last few
/// thousand batch/span/checkpoint events without holding more than a few MB.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// Global record-enable switch.  `true` by default; flipping it off makes
/// every counter/gauge/histogram/recorder write a single relaxed load plus
/// an early return.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether recording is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables all recording process-wide.  Exists for the
/// obs-overhead benchmark sweep (obs-on vs obs-off ticks/s); production
/// callers leave it on.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

/// The process-global metrics registry every layer records into.
pub fn registry() -> &'static Registry {
    REGISTRY.get_or_init(Registry::new)
}

static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();

/// The process-global flight recorder
/// ([`DEFAULT_RECORDER_CAPACITY`] slots).
pub fn recorder() -> &'static FlightRecorder {
    RECORDER.get_or_init(|| FlightRecorder::with_capacity(DEFAULT_RECORDER_CAPACITY))
}

/// Opens a span on this thread's span stack; the returned guard records a
/// `span` event into the global [`recorder()`] when dropped.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tests that toggle or depend on the global enable switch serialize on
    /// this lock so a disabled window never swallows a concurrent test's
    /// recordings.
    pub(crate) fn enabled_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabling_turns_recording_into_a_no_op() {
        let _guard = enabled_lock();
        let registry = Registry::new();
        let counter = registry.counter("tkcm_test_toggle_total", &[]);
        let histogram = registry.histogram("tkcm_test_toggle_nanos", &[]);
        counter.inc();
        histogram.record(10);
        set_enabled(false);
        counter.inc();
        histogram.record(10);
        set_enabled(true);
        counter.inc();
        assert_eq!(counter.value(), 2);
        assert_eq!(histogram.observed_count(), 1);
    }

    #[test]
    fn global_registry_and_recorder_are_singletons() {
        let _guard = enabled_lock();
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
        assert_eq!(recorder().capacity(), DEFAULT_RECORDER_CAPACITY);
    }
}
