//! # tkcm
//!
//! Facade crate of the TKCM workspace: a from-scratch Rust reproduction of
//! *Continuous Imputation of Missing Values in Streams of Pattern-Determining
//! Time Series* (Wellenzohn et al., EDBT 2017).
//!
//! The workspace is split into focused crates; this crate re-exports their
//! public APIs so applications can depend on a single crate:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`obs`] | `tkcm-obs` | observability: metrics registry, span tracing, crash flight recorder |
//! | [`store`] | `tkcm-store` | durability: deterministic snapshots, write-ahead logs, checksums |
//! | [`timeseries`] | `tkcm-timeseries` | series, ring buffers, streaming windows, catalogs |
//! | [`matrix`] | `tkcm-matrix` | dense linear algebra (SVD, centroid decomposition, RLS, online PCA) |
//! | [`core`] | `tkcm-core` | the TKCM algorithm: patterns, dissimilarity, DP selection, streaming engine |
//! | [`runtime`] | `tkcm-runtime` | sharded multi-threaded fleet runtime (one engine per catalog-connected shard) |
//! | [`baselines`] | `tkcm-baselines` | SPIRIT, MUSCLES, CD, SVD, kNNI, interpolation, LOCF, mean |
//! | [`datasets`] | `tkcm-datasets` | synthetic SBR / SBR-1d / Flights / Chlorine generators, missing-block injection, CSV |
//! | [`eval`] | `tkcm-eval` | metrics, scenario harness and one module per figure of the paper |
//!
//! ## Example
//!
//! ```
//! use tkcm::core::{TkcmConfig, TkcmEngine};
//! use tkcm::timeseries::{Catalog, SeriesId, StreamTick, Timestamp};
//!
//! let config = TkcmConfig::builder()
//!     .window_length(64)
//!     .pattern_length(4)
//!     .anchor_count(3)
//!     .reference_count(1)
//!     .build()
//!     .unwrap();
//! let mut engine = TkcmEngine::new(2, config, Catalog::ring_neighbours(2)).unwrap();
//!
//! for t in 0..64i64 {
//!     let value = (t as f64 * 0.3).sin();
//!     let target = if t == 63 { None } else { Some(value) };
//!     let tick = StreamTick::new(Timestamp::new(t), vec![target, Some(value * 2.0)]);
//!     let outcome = engine.process_tick(&tick).unwrap();
//!     if t == 63 {
//!         assert!(outcome.imputed_value(SeriesId(0)).unwrap().is_finite());
//!     }
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The TKCM algorithm (re-export of `tkcm-core`).
pub use tkcm_core as core;

/// Baseline imputation algorithms (re-export of `tkcm-baselines`).
pub use tkcm_baselines as baselines;

/// Sharded multi-threaded fleet runtime (re-export of `tkcm-runtime`).
pub use tkcm_runtime as runtime;

/// Synthetic dataset generators (re-export of `tkcm-datasets`).
pub use tkcm_datasets as datasets;

/// Experiment harness (re-export of `tkcm-eval`).
pub use tkcm_eval as eval;

/// Dense linear-algebra substrate (re-export of `tkcm-matrix`).
pub use tkcm_matrix as matrix;

/// Observability substrate: metrics registry, span tracing and the crash
/// flight recorder (re-export of `tkcm-obs`).
pub use tkcm_obs as obs;

/// Durable engine state: snapshots + write-ahead logs (re-export of
/// `tkcm-store`).
pub use tkcm_store as store;

/// Time-series stream substrate (re-export of `tkcm-timeseries`).
pub use tkcm_timeseries as timeseries;

/// Convenience prelude with the most commonly used types.
pub mod prelude {
    pub use tkcm_baselines::{BatchImputer, OnlineImputer};
    pub use tkcm_core::{TkcmConfig, TkcmEngine, TkcmImputer};
    pub use tkcm_datasets::{ChlorineConfig, Dataset, DatasetKind, FlightsConfig, SbrConfig};
    pub use tkcm_eval::{run_batch_scenario, run_online_scenario, Scenario, TkcmOnlineAdapter};
    pub use tkcm_runtime::{DurabilityOptions, ShardedEngine, SyncPolicy};
    pub use tkcm_store::Snapshot;
    pub use tkcm_timeseries::{
        Catalog, FleetPartition, SampleInterval, SeriesId, StreamTick, StreamingWindow, TimeSeries,
        Timestamp,
    };
}
