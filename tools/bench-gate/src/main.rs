//! CLI for the benchmark regression gate.
//!
//! ```text
//! tkcm-bench-gate --profile quick [--thresholds BENCH_THRESHOLDS.toml]
//!                 [--dir .] [--bless]
//!                 [--append-history FILE.jsonl [--label LABEL]]
//! ```
//!
//! Exit codes: 0 = every gated metric is at or above its floor, 1 = a
//! metric regressed (or its results file is missing), 2 = usage or I/O
//! error.  A floor whose metric is absent from the results JSON (a renamed
//! trend key) prints a stderr warning but exits 0 — visible, not fatal.
//! `--bless` re-floors every gated metric at
//! observed x 0.7 and rewrites the thresholds file instead of gating;
//! `--append-history` appends one JSONL line of all observed trend metrics
//! (nightly runs accumulate these into a rolling artifact).

use std::path::PathBuf;
use std::process::ExitCode;

use tkcm_bench_gate::{bless, dropped_floor_keys, evaluate, history_line, Thresholds};

struct Args {
    profile: String,
    thresholds: PathBuf,
    dir: PathBuf,
    bless: bool,
    append_history: Option<PathBuf>,
    label: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        profile: String::new(),
        thresholds: PathBuf::from("BENCH_THRESHOLDS.toml"),
        dir: PathBuf::from("."),
        bless: false,
        append_history: None,
        label: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--profile" => args.profile = value("--profile")?,
            "--thresholds" => args.thresholds = PathBuf::from(value("--thresholds")?),
            "--dir" => args.dir = PathBuf::from(value("--dir")?),
            "--bless" => args.bless = true,
            "--append-history" => {
                args.append_history = Some(PathBuf::from(value("--append-history")?))
            }
            "--label" => args.label = Some(value("--label")?),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.profile.is_empty() {
        return Err("--profile <quick|paper> is required".to_string());
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let mut thresholds = Thresholds::load(&args.thresholds)?;
    let (failures, warnings, observed) = evaluate(&thresholds, &args.profile, &args.dir)?;

    if let Some(history) = &args.append_history {
        let label = args.label.clone().unwrap_or_else(|| args.profile.clone());
        let line = history_line(&label, &args.profile, &observed);
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(history)
            .map_err(|e| format!("opening {}: {e}", history.display()))?;
        writeln!(file, "{line}").map_err(|e| format!("appending to {}: {e}", history.display()))?;
        println!("history line appended to {}", history.display());
    }

    if args.bless {
        // Blessing needs complete observations: a missing file or trend
        // field must not be floored away.
        let incomplete: Vec<&String> = failures
            .iter()
            .filter(|f| !f.contains("below the floor"))
            .chain(warnings.iter())
            .collect();
        if !incomplete.is_empty() {
            for problem in incomplete {
                eprintln!("bench-gate: {problem}");
            }
            return Err("cannot bless from incomplete benchmark results".to_string());
        }
        let on_disk = Thresholds::load(&args.thresholds)?;
        bless(&mut thresholds, &args.profile, &observed)?;
        // Belt-and-braces: the rewrite must gate exactly what the on-disk
        // file gated.  Re-parse the rendering (so render/parse lossiness is
        // caught too) and refuse if any floor key would vanish — dropping a
        // gate is a hand edit, never a `--bless` side effect.
        let rendered = thresholds.render();
        let reparsed = Thresholds::parse(&rendered)?;
        let dropped = dropped_floor_keys(&on_disk, &reparsed);
        if !dropped.is_empty() {
            for key in &dropped {
                eprintln!("bench-gate: blessing would drop the floor `{key}`");
            }
            return Err(format!(
                "refusing to bless: {} floor key(s) would drop from {} — retire floors by hand \
                 if that is intended",
                dropped.len(),
                args.thresholds.display()
            ));
        }
        std::fs::write(&args.thresholds, rendered)
            .map_err(|e| format!("writing {}: {e}", args.thresholds.display()))?;
        println!(
            "blessed `{}` floors in {} from observed x 0.7",
            args.profile,
            args.thresholds.display()
        );
        return Ok(true);
    }

    for warning in &warnings {
        eprintln!("bench-gate: WARN {warning}");
    }
    for failure in &failures {
        eprintln!("bench-gate: FAIL {failure}");
    }
    let gated: usize = observed.values().map(|t| t.len()).sum();
    if failures.is_empty() {
        println!(
            "bench-gate: profile `{}` passed ({gated} trend metrics inspected)",
            args.profile
        );
    }
    Ok(failures.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bench-gate: error: {e}");
            ExitCode::from(2)
        }
    }
}
