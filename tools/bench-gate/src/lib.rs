//! Performance-regression gate over the benchmark trend JSON.
//!
//! The benchmark binaries (`fleet_throughput`, `recovery_bench`,
//! `candidate_pruning`) each write a results file whose top level carries a
//! *flat* `"trend"` object of gateable numbers — per-shard speedups,
//! per-mode throughput, `pruned_fraction`, recovery speedups.  This crate
//! reads those files, compares each trend field against the minimums in
//! `BENCH_THRESHOLDS.toml` and fails CI (exit 1) when a metric regresses
//! below its floor.
//!
//! Like `tkcm-lint`, the gate is dependency-free: it parses a deliberately
//! tiny TOML subset (section headers + `key = value` lines) and scans the
//! one flat JSON object it needs instead of pulling in a JSON parser.  The
//! `--bless` flow rewrites the thresholds from observed values with a 30 %
//! safety margin, so floors stay honest as the code gets faster without
//! anyone hand-tuning numbers.

use std::collections::BTreeMap;
use std::path::Path;

/// One gated results file: which JSON to read and the floor for each trend
/// metric found in it.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Gate name (the second segment of the `[profile.gate]` section).
    pub name: String,
    /// Results file, relative to the directory passed on the command line.
    pub file: String,
    /// Metric name → minimum acceptable value.
    pub minimums: BTreeMap<String, f64>,
}

/// Parsed `BENCH_THRESHOLDS.toml`: profile name (`quick`, `paper`) → gates.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Thresholds {
    /// Profile → gates, both sorted for deterministic rendering.
    pub profiles: BTreeMap<String, Vec<Gate>>,
}

impl Thresholds {
    /// Parses the thresholds file.  The accepted grammar is the same
    /// hand-rolled TOML subset the fingerprint manifest uses: comments,
    /// `[profile.gate]` section headers, `file = "quoted"` and
    /// `metric = <float>` lines.  Anything else is an error — the file is
    /// small and machine-rewritten by `--bless`, so surprises mean drift.
    pub fn parse(text: &str) -> Result<Thresholds, String> {
        let mut thresholds = Thresholds::default();
        let mut current: Option<(String, String)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let (profile, gate) = header.split_once('.').ok_or_else(|| {
                    format!("line {}: section headers are [profile.gate]", lineno + 1)
                })?;
                if profile.is_empty() || gate.is_empty() {
                    return Err(format!("line {}: empty section segment", lineno + 1));
                }
                thresholds
                    .profiles
                    .entry(profile.to_string())
                    .or_default()
                    .push(Gate {
                        name: gate.to_string(),
                        file: String::new(),
                        minimums: BTreeMap::new(),
                    });
                current = Some((profile.to_string(), gate.to_string()));
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected `key = value`", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            let (profile, gate) = current.clone().ok_or_else(|| {
                format!("line {}: key before any [profile.gate] section", lineno + 1)
            })?;
            let entry = thresholds
                .profiles
                .get_mut(&profile)
                .and_then(|gates| gates.iter_mut().find(|g| g.name == gate))
                .expect("current section was just inserted");
            if key == "file" {
                let quoted = value
                    .strip_prefix('"')
                    .and_then(|v| v.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: file values are quoted", lineno + 1))?;
                entry.file = quoted.to_string();
            } else {
                let parsed: f64 = value
                    .parse()
                    .map_err(|_| format!("line {}: {key} must be a number", lineno + 1))?;
                entry.minimums.insert(key.to_string(), parsed);
            }
        }
        for (profile, gates) in &thresholds.profiles {
            for gate in gates {
                if gate.file.is_empty() {
                    return Err(format!("[{profile}.{}] is missing a `file` key", gate.name));
                }
            }
        }
        Ok(thresholds)
    }

    /// Loads and parses the thresholds at `path`.
    pub fn load(path: &Path) -> Result<Thresholds, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Thresholds::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Renders the thresholds deterministically (profiles and metrics in
    /// sorted order, gates in declaration order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# Benchmark regression floors — checked by `cargo run -p tkcm-bench-gate`.\n\
             # Each [profile.gate] section names one benchmark results file and the\n\
             # minimum acceptable value for trend metrics in it.  Regenerate floors\n\
             # from fresh measurements (observed x 0.7) with `--bless`.\n",
        );
        for (profile, gates) in &self.profiles {
            for gate in gates {
                out.push_str(&format!(
                    "\n[{profile}.{}]\nfile = \"{}\"\n",
                    gate.name, gate.file
                ));
                for (metric, min) in &gate.minimums {
                    out.push_str(&format!("{metric} = {min}\n"));
                }
            }
        }
        out
    }
}

/// Extracts the flat top-level `"trend"` object from a benchmark results
/// file.  The object is flat by construction (the serialisers in
/// `tkcm-bench` emit only `"name":number|null` pairs), so a brace-free scan
/// between `"trend":{` and the next `}` is exact, not heuristic.
pub fn parse_trend(json: &str) -> Result<BTreeMap<String, f64>, String> {
    let start = json
        .find("\"trend\":{")
        .ok_or_else(|| "no top-level \"trend\" object".to_string())?
        + "\"trend\":{".len();
    let end = json[start..]
        .find('}')
        .ok_or_else(|| "unterminated \"trend\" object".to_string())?
        + start;
    let body = json[start..end].trim();
    let mut trend = BTreeMap::new();
    if body.is_empty() {
        return Ok(trend);
    }
    for pair in body.split(',') {
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed trend entry `{pair}`"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted trend key in `{pair}`"))?;
        let value = value.trim();
        if value == "null" {
            // Non-finite measurement (e.g. a zero-wall-time division);
            // absent from the map, so gating on it reports "missing".
            continue;
        }
        let parsed: f64 = value
            .parse()
            .map_err(|_| format!("non-numeric trend value in `{pair}`"))?;
        trend.insert(key.to_string(), parsed);
    }
    Ok(trend)
}

/// One gate-evaluation problem, already formatted for display.
pub type Failure = String;

/// A non-fatal gate-evaluation note, already formatted for display.
pub type Warning = String;

/// Observed trend metrics per gate name (`gate → metric → value`).
pub type ObservedTrends = BTreeMap<String, BTreeMap<String, f64>>;

/// Evaluates every gate of `profile` against the results files under `dir`.
/// Returns the list of failures (empty = the gate passes), the list of
/// warnings (a floor whose metric is absent from its results file — e.g. a
/// renamed trend key — warns instead of silently un-gating, but does not
/// fail the run) and the observed trend per gate (for `--bless` and
/// `--append-history`).
pub fn evaluate(
    thresholds: &Thresholds,
    profile: &str,
    dir: &Path,
) -> Result<(Vec<Failure>, Vec<Warning>, ObservedTrends), String> {
    let gates = thresholds
        .profiles
        .get(profile)
        .ok_or_else(|| format!("profile `{profile}` is not in the thresholds file"))?;
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let mut observed = BTreeMap::new();
    for gate in gates {
        let path = dir.join(&gate.file);
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) => {
                failures.push(format!(
                    "[{profile}.{}] cannot read {}: {e}",
                    gate.name,
                    path.display()
                ));
                continue;
            }
        };
        let trend = match parse_trend(&json) {
            Ok(trend) => trend,
            Err(e) => {
                failures.push(format!("[{profile}.{}] {}: {e}", gate.name, path.display()));
                continue;
            }
        };
        for (metric, min) in &gate.minimums {
            match trend.get(metric) {
                None => warnings.push(format!(
                    "[{profile}.{}] {} has no `{metric}` in its trend object — this floor \
                     currently gates nothing (renamed trend key? update the thresholds file)",
                    gate.name, gate.file
                )),
                Some(value) if value < min => failures.push(format!(
                    "[{profile}.{}] {metric} = {value} is below the floor {min}",
                    gate.name
                )),
                Some(_) => {}
            }
        }
        observed.insert(gate.name.clone(), trend);
    }
    Ok((failures, warnings, observed))
}

/// Rewrites each gated metric's floor to `observed x 0.7` (rounded to three
/// decimals), leaving the metric *set* unchanged: blessing updates numbers,
/// it never silently adds or drops what is gated.  Metrics missing from the
/// observed trend are an error — a floor must never outlive its metric.
pub fn bless(
    thresholds: &mut Thresholds,
    profile: &str,
    observed: &BTreeMap<String, BTreeMap<String, f64>>,
) -> Result<(), String> {
    let gates = thresholds
        .profiles
        .get_mut(profile)
        .ok_or_else(|| format!("profile `{profile}` is not in the thresholds file"))?;
    for gate in gates {
        let trend = observed
            .get(&gate.name)
            .ok_or_else(|| format!("no observed trend for [{profile}.{}]", gate.name))?;
        for (metric, min) in gate.minimums.iter_mut() {
            let value = trend.get(metric).ok_or_else(|| {
                format!(
                    "[{profile}.{}] observed trend has no `{metric}` to bless from",
                    gate.name
                )
            })?;
            *min = (value * 0.7 * 1000.0).round() / 1000.0;
        }
    }
    Ok(())
}

/// Flattens a thresholds tree into its `(profile, gate, metric)` floor
/// keys, rendered `profile.gate.metric`, plus a `profile.gate.file` entry
/// per gate — the complete set of things the file gates.
pub fn floor_keys(thresholds: &Thresholds) -> std::collections::BTreeSet<String> {
    let mut keys = std::collections::BTreeSet::new();
    for (profile, gates) in &thresholds.profiles {
        for gate in gates {
            keys.insert(format!("{profile}.{}.file", gate.name));
            for metric in gate.minimums.keys() {
                keys.insert(format!("{profile}.{}.{metric}", gate.name));
            }
        }
    }
    keys
}

/// The floor keys present in `before` but absent from `after` — non-empty
/// means a thresholds rewrite would silently stop gating something.
/// `--bless` refuses to write in that case: retiring a floor (e.g. after a
/// trend-key rename) must be an explicit hand edit, never a side effect of
/// re-flooring.
pub fn dropped_floor_keys(before: &Thresholds, after: &Thresholds) -> Vec<String> {
    let kept = floor_keys(after);
    floor_keys(before)
        .into_iter()
        .filter(|key| !kept.contains(key))
        .collect()
}

/// Renders one rolling-history line: a self-contained JSON object with the
/// label, the profile and every observed trend metric namespaced by gate
/// (`"pruning.pruned_fraction"`).  Appended to `BENCH_trend_history.jsonl`
/// by the nightly workflow so the metric trajectory is one artifact.
pub fn history_line(
    label: &str,
    profile: &str,
    observed: &BTreeMap<String, BTreeMap<String, f64>>,
) -> String {
    let mut fields = Vec::new();
    for (gate, trend) in observed {
        for (metric, value) in trend {
            fields.push(format!("\"{gate}.{metric}\":{value}"));
        }
    }
    format!(
        "{{\"label\":\"{label}\",\"profile\":\"{profile}\",\"trend\":{{{}}}}}",
        fields.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# comment\n\
[quick.fleet]\n\
file = \"BENCH_results_fleet.json\"\n\
speedup_vs_1_shard_at_4 = 1.2\n\
\n\
[quick.pruning]\n\
file = \"BENCH_results_pruning.json\"\n\
pruned_fraction = 0.5\n\
speedup_vs_exhaustive = 1.5\n";

    #[test]
    fn thresholds_render_parse_round_trips() {
        let parsed = Thresholds::parse(SAMPLE).unwrap();
        assert_eq!(parsed.profiles["quick"].len(), 2);
        assert_eq!(parsed.profiles["quick"][1].minimums["pruned_fraction"], 0.5);
        let back = Thresholds::parse(&parsed.render()).unwrap();
        assert_eq!(back, parsed);
    }

    #[test]
    fn malformed_thresholds_are_rejected() {
        assert!(Thresholds::parse("[flat]\nfile = \"x\"\n").is_err());
        assert!(Thresholds::parse("orphan = 1\n").is_err());
        assert!(Thresholds::parse("[q.g]\nfile = unquoted\n").is_err());
        assert!(Thresholds::parse("[q.g]\nmetric = not_a_number\n").is_err());
        // A section without a `file` key cannot be gated.
        assert!(Thresholds::parse("[q.g]\nmetric = 1\n").is_err());
    }

    #[test]
    fn trend_extraction_reads_the_flat_object() {
        let json = r#"{"scale":"Quick","trend":{"a":1.5,"b":null,"c":-2e3},"experiments":[{"report":{"x":"}"}}]}"#;
        let trend = parse_trend(json).unwrap();
        assert_eq!(trend.get("a"), Some(&1.5));
        assert_eq!(trend.get("b"), None); // null → missing, not zero
        assert_eq!(trend.get("c"), Some(&-2000.0));
        assert!(parse_trend("{\"no_trend\":{}}").is_err());
        assert!(parse_trend("{\"trend\":{\"a\":}").is_err());
        assert_eq!(parse_trend("{\"trend\":{}}").unwrap().len(), 0);
    }

    #[test]
    fn a_floor_without_its_metric_warns_instead_of_failing() {
        let dir =
            std::env::temp_dir().join(format!("tkcm-bench-gate-lib-warn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let thresholds = Thresholds::parse(
            "[quick.fleet]\nfile = \"r.json\"\nold_name = 1.0\nhealthy = 1.0\nbad = 5.0\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("r.json"),
            "{\"trend\":{\"healthy\":2.0,\"bad\":1.0,\"new_name\":9.0}}",
        )
        .unwrap();
        let (failures, warnings, observed) = evaluate(&thresholds, "quick", &dir).unwrap();
        // The renamed key warns (it must not silently un-gate)…
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("`old_name`"), "{}", warnings[0]);
        assert!(warnings[0].contains("gates nothing"), "{}", warnings[0]);
        // …while real regressions still fail, and healthy metrics pass.
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("bad = 1"), "{}", failures[0]);
        assert_eq!(observed["fleet"]["new_name"], 9.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bless_applies_the_margin_and_keeps_the_metric_set() {
        let mut thresholds = Thresholds::parse(SAMPLE).unwrap();
        let mut observed = BTreeMap::new();
        observed.insert(
            "fleet".to_string(),
            BTreeMap::from([("speedup_vs_1_shard_at_4".to_string(), 3.0)]),
        );
        observed.insert(
            "pruning".to_string(),
            BTreeMap::from([
                ("pruned_fraction".to_string(), 0.9),
                ("speedup_vs_exhaustive".to_string(), 4.0),
                ("an_unrelated_metric".to_string(), 1.0),
            ]),
        );
        bless(&mut thresholds, "quick", &observed).unwrap();
        let gates = &thresholds.profiles["quick"];
        assert_eq!(gates[0].minimums["speedup_vs_1_shard_at_4"], 2.1);
        assert_eq!(gates[1].minimums["pruned_fraction"], 0.63);
        assert_eq!(gates[1].minimums["speedup_vs_exhaustive"], 2.8);
        // Blessing never grows the gated set.
        assert!(!gates[1].minimums.contains_key("an_unrelated_metric"));
        // A floor whose metric vanished from the results is an error.
        observed
            .get_mut("pruning")
            .unwrap()
            .remove("pruned_fraction");
        assert!(bless(&mut thresholds, "quick", &observed).is_err());
    }

    #[test]
    fn dropped_floor_keys_spots_removed_metrics_gates_and_profiles() {
        let before = Thresholds::parse(SAMPLE).unwrap();
        // A faithful bless round-trip (render + parse, floors re-numbered)
        // drops nothing.
        let mut blessed = before.clone();
        let observed = BTreeMap::from([
            (
                "fleet".to_string(),
                BTreeMap::from([("speedup_vs_1_shard_at_4".to_string(), 3.0)]),
            ),
            (
                "pruning".to_string(),
                BTreeMap::from([
                    ("pruned_fraction".to_string(), 0.9),
                    ("speedup_vs_exhaustive".to_string(), 4.0),
                ]),
            ),
        ]);
        bless(&mut blessed, "quick", &observed).unwrap();
        let reparsed = Thresholds::parse(&blessed.render()).unwrap();
        assert!(dropped_floor_keys(&before, &reparsed).is_empty());

        // Removing a metric, a whole gate or a whole profile is detected.
        let mut lossy = before.clone();
        lossy.profiles.get_mut("quick").unwrap()[1]
            .minimums
            .remove("pruned_fraction");
        assert_eq!(
            dropped_floor_keys(&before, &lossy),
            vec!["quick.pruning.pruned_fraction".to_string()]
        );
        let mut gateless = before.clone();
        gateless.profiles.get_mut("quick").unwrap().remove(1);
        let dropped = dropped_floor_keys(&before, &gateless);
        assert!(dropped.contains(&"quick.pruning.file".to_string()));
        assert!(dropped.contains(&"quick.pruning.pruned_fraction".to_string()));
        let empty = Thresholds::default();
        assert_eq!(dropped_floor_keys(&before, &empty).len(), 5);
    }

    #[test]
    fn history_line_namespaces_metrics_by_gate() {
        let observed = BTreeMap::from([(
            "pruning".to_string(),
            BTreeMap::from([("pruned_fraction".to_string(), 0.75)]),
        )]);
        let line = history_line("run-42", "paper", &observed);
        assert_eq!(
            line,
            "{\"label\":\"run-42\",\"profile\":\"paper\",\"trend\":{\"pruning.pruned_fraction\":0.75}}"
        );
    }
}
