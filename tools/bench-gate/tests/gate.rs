//! End-to-end tests of the gate binary: exit codes, the `--bless` flow and
//! the rolling-history append, driven through `CARGO_BIN_EXE` like the
//! `tkcm-lint` lifecycle tests.

use std::path::{Path, PathBuf};
use std::process::Output;

fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tkcm-bench-gate-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write(dir: &Path, name: &str, contents: &str) {
    std::fs::write(dir.join(name), contents).unwrap();
}

fn run_gate(dir: &Path, extra: &[&str]) -> Output {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_tkcm-bench-gate"));
    cmd.args([
        "--profile",
        "quick",
        "--thresholds",
        dir.join("BENCH_THRESHOLDS.toml").to_str().unwrap(),
        "--dir",
        dir.to_str().unwrap(),
    ])
    .args(extra);
    cmd.output().unwrap()
}

const THRESHOLDS: &str = "\
[quick.fleet]\n\
file = \"BENCH_results_fleet.json\"\n\
speedup_vs_1_shard_at_4 = 1.2\n\
\n\
[quick.pruning]\n\
file = \"BENCH_results_pruning.json\"\n\
speedup_vs_exhaustive = 1.5\n\
pruned_fraction = 0.5\n";

fn results(speedup_at_4: f64, speedup_vs_exhaustive: f64, pruned_fraction: f64) -> [String; 2] {
    [
        format!(
            "{{\"scale\":\"Quick\",\"trend\":{{\"speedup_vs_1_shard_at_4\":{speedup_at_4}}},\"experiments\":[]}}"
        ),
        format!(
            "{{\"scale\":\"Quick\",\"trend\":{{\"speedup_vs_exhaustive\":{speedup_vs_exhaustive},\"pruned_fraction\":{pruned_fraction}}},\"experiments\":[]}}"
        ),
    ]
}

#[test]
fn healthy_results_pass_with_exit_zero() {
    let dir = scratch("pass");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    let [fleet, pruning] = results(3.1, 2.4, 0.8);
    write(&dir, "BENCH_results_fleet.json", &fleet);
    write(&dir, "BENCH_results_pruning.json", &pruning);
    let out = run_gate(&dir, &[]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("passed"));
}

#[test]
fn a_synthetic_regression_fails_with_exit_one() {
    let dir = scratch("regress");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    // pruned_fraction collapses below its floor — the gate must fail even
    // though every other metric is healthy.
    let [fleet, pruning] = results(3.1, 2.4, 0.1);
    write(&dir, "BENCH_results_fleet.json", &fleet);
    write(&dir, "BENCH_results_pruning.json", &pruning);
    let out = run_gate(&dir, &[]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("pruned_fraction"), "stderr: {stderr}");
    assert!(stderr.contains("below the floor"), "stderr: {stderr}");
}

#[test]
fn a_missing_results_file_fails_with_exit_one() {
    let dir = scratch("missing");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    let [fleet, _] = results(3.1, 2.4, 0.8);
    write(&dir, "BENCH_results_fleet.json", &fleet);
    let out = run_gate(&dir, &[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("BENCH_results_pruning.json"));
}

#[test]
fn a_threshold_key_missing_from_the_results_warns_but_passes() {
    let dir = scratch("renamed-key");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    let [fleet, _] = results(3.1, 2.4, 0.8);
    write(&dir, "BENCH_results_fleet.json", &fleet);
    // The pruning results file exists but its trend keys were renamed: the
    // floors in the TOML no longer match anything.  That must be *visible*
    // (stderr note) without failing the run.
    write(
        &dir,
        "BENCH_results_pruning.json",
        "{\"scale\":\"Quick\",\"trend\":{\"pruned_share\":0.8,\"speedup\":2.4},\"experiments\":[]}",
    );
    let out = run_gate(&dir, &[]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("WARN"), "stderr: {stderr}");
    assert!(stderr.contains("`pruned_fraction`"), "stderr: {stderr}");
    assert!(
        stderr.contains("`speedup_vs_exhaustive`"),
        "stderr: {stderr}"
    );
    // Blessing from that state would floor away the stale keys — refuse.
    assert_eq!(run_gate(&dir, &["--bless"]).status.code(), Some(2));
}

#[test]
fn an_unknown_profile_is_a_usage_error() {
    let dir = scratch("usage");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_tkcm-bench-gate"))
        .args([
            "--profile",
            "weekly",
            "--thresholds",
            dir.join("BENCH_THRESHOLDS.toml").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn bless_refloors_from_observed_and_then_passes() {
    let dir = scratch("bless");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    // Faster than the floors require: blessing should *raise* them.
    let [fleet, pruning] = results(10.0, 10.0, 0.9);
    write(&dir, "BENCH_results_fleet.json", &fleet);
    write(&dir, "BENCH_results_pruning.json", &pruning);
    let out = run_gate(&dir, &["--bless"]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let blessed = std::fs::read_to_string(dir.join("BENCH_THRESHOLDS.toml")).unwrap();
    assert!(
        blessed.contains("speedup_vs_1_shard_at_4 = 7"),
        "blessed: {blessed}"
    );
    assert!(
        blessed.contains("pruned_fraction = 0.63"),
        "blessed: {blessed}"
    );
    // The blessed floors gate the same results cleanly.
    assert!(run_gate(&dir, &[]).status.success());
    // Blessing from incomplete results (a gated file missing) must refuse.
    std::fs::remove_file(dir.join("BENCH_results_pruning.json")).unwrap();
    assert_eq!(run_gate(&dir, &["--bless"]).status.code(), Some(2));
}

#[test]
fn append_history_accumulates_one_line_per_run() {
    let dir = scratch("history");
    write(&dir, "BENCH_THRESHOLDS.toml", THRESHOLDS);
    let [fleet, pruning] = results(3.1, 2.4, 0.8);
    write(&dir, "BENCH_results_fleet.json", &fleet);
    write(&dir, "BENCH_results_pruning.json", &pruning);
    let history = dir.join("BENCH_trend_history.jsonl");
    for label in ["run-1", "run-2"] {
        let out = run_gate(
            &dir,
            &[
                "--append-history",
                history.to_str().unwrap(),
                "--label",
                label,
            ],
        );
        assert!(out.status.success());
    }
    let lines: Vec<String> = std::fs::read_to_string(&history)
        .unwrap()
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("\"label\":\"run-1\""));
    assert!(lines[1].contains("\"label\":\"run-2\""));
    assert!(lines[1].contains("\"pruning.pruned_fraction\":0.8"));
    assert!(lines[1].contains("\"fleet.speedup_vs_1_shard_at_4\":3.1"));
}
