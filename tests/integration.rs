//! Integration tests spanning the workspace crates: dataset generation →
//! missing-block injection → streaming imputation → evaluation, exercised
//! through the `tkcm` facade exactly as a downstream user would.

use tkcm::baselines::{CdImputer, LocfImputer, MusclesImputer, SpiritImputer};
use tkcm::core::SelectionStrategy;
use tkcm::prelude::*;

fn quick_config(len: usize, l: usize) -> TkcmConfig {
    TkcmConfig::builder()
        .window_length(len)
        .pattern_length(l)
        .anchor_count(5)
        .reference_count(3)
        .build()
        .expect("valid config")
}

#[test]
fn end_to_end_sbr_shifted_pipeline() {
    // Generate a shifted weather dataset, break one sensor for half a day and
    // check that TKCM recovers it much better than carrying the last value
    // forward.
    let dataset = SbrConfig {
        stations: 5,
        days: 6,
        seed: 21,
        ..SbrConfig::default()
    }
    .shifted()
    .generate();
    let len = dataset.len();
    let scenario = Scenario::tail_block(dataset, SeriesId(0), 0.08);

    let mut tkcm = TkcmOnlineAdapter::new(
        scenario.dataset.width(),
        quick_config(len, 12),
        scenario.catalog.clone(),
    );
    let mut locf = LocfImputer::new();

    let tkcm_out = run_online_scenario(&mut tkcm, &scenario);
    let locf_out = run_online_scenario(&mut locf, &scenario);

    assert_eq!(tkcm_out.scored, scenario.missing_count());
    assert_eq!(tkcm_out.unanswered, 0);
    assert!(tkcm_out.rmse.is_finite());
    assert!(
        tkcm_out.rmse < locf_out.rmse,
        "TKCM ({}) should beat LOCF ({}) on a half-day outage",
        tkcm_out.rmse,
        locf_out.rmse
    );
}

#[test]
fn tkcm_handles_phase_shifted_chlorine_streams() {
    // The headline claim: on phase-shifted streams TKCM stays accurate while
    // the linear online methods degrade.
    let dataset = ChlorineConfig {
        junctions: 8,
        days: 5,
        seed: 4,
        ..ChlorineConfig::default()
    }
    .generate();
    let len = dataset.len();
    let scenario = Scenario::tail_block(dataset, SeriesId(0), 0.15);
    let width = scenario.dataset.width();

    let mut tkcm = TkcmOnlineAdapter::new(width, quick_config(len, 24), scenario.catalog.clone());
    let mut spirit = SpiritImputer::new(width);
    let mut muscles = MusclesImputer::new(width);

    let tkcm_out = run_online_scenario(&mut tkcm, &scenario);
    let spirit_out = run_online_scenario(&mut spirit, &scenario);
    let muscles_out = run_online_scenario(&mut muscles, &scenario);

    assert!(tkcm_out.rmse.is_finite());
    assert!(
        tkcm_out.rmse <= spirit_out.rmse * 1.05,
        "TKCM {} vs SPIRIT {}",
        tkcm_out.rmse,
        spirit_out.rmse
    );
    assert!(
        tkcm_out.rmse <= muscles_out.rmse * 1.05,
        "TKCM {} vs MUSCLES {}",
        tkcm_out.rmse,
        muscles_out.rmse
    );
}

#[test]
fn batch_cd_runs_through_the_same_scenario_api() {
    let dataset = SbrConfig {
        stations: 4,
        days: 4,
        seed: 9,
        ..SbrConfig::default()
    }
    .generate();
    let scenario = Scenario::tail_block(dataset, SeriesId(1), 0.05);
    let out = run_batch_scenario(&CdImputer::new(), &scenario);
    assert_eq!(out.scored, scenario.missing_count());
    assert!(out.rmse.is_finite());
    // On a non-shifted dataset CD must do clearly better than predicting a
    // constant 0 °C (the values are around 10-20 °C).
    assert!(out.rmse < 10.0, "CD rmse {}", out.rmse);
}

#[test]
fn dp_selection_is_at_least_as_good_as_greedy_end_to_end() {
    let dataset = FlightsConfig {
        airports: 6,
        days: 3,
        seed: 17,
        ..FlightsConfig::default()
    }
    .generate();
    let len = dataset.len();
    let scenario = Scenario::tail_block(dataset, SeriesId(0), 0.1);

    let run_with = |strategy: SelectionStrategy| {
        let config = TkcmConfig::builder()
            .window_length(len)
            .pattern_length(30)
            .anchor_count(5)
            .reference_count(3)
            .selection(strategy)
            .build()
            .expect("valid config");
        let mut tkcm =
            TkcmOnlineAdapter::new(scenario.dataset.width(), config, scenario.catalog.clone());
        run_online_scenario(&mut tkcm, &scenario).rmse
    };

    let dp = run_with(SelectionStrategy::DynamicProgramming);
    let greedy = run_with(SelectionStrategy::Greedy);
    assert!(dp.is_finite() && greedy.is_finite());
    // The DP minimises the dissimilarity sum; end to end it should not be
    // noticeably worse than the greedy heuristic.
    assert!(dp <= greedy * 1.15, "dp {} vs greedy {}", dp, greedy);
}

#[test]
fn csv_roundtrip_preserves_a_generated_dataset() {
    let dataset = FlightsConfig {
        airports: 3,
        days: 1,
        seed: 5,
        ..FlightsConfig::default()
    }
    .generate();
    let mut buf = Vec::new();
    tkcm::datasets::csv::write_csv(&dataset, &mut buf).expect("write succeeds");
    let parsed = tkcm::datasets::csv::read_csv(
        std::io::BufReader::new(&buf[..]),
        DatasetKind::Flights,
        SampleInterval::ONE_MINUTE,
    )
    .expect("read succeeds");
    assert_eq!(parsed.width(), dataset.width());
    assert_eq!(parsed.len(), dataset.len());
    for (a, b) in dataset.series.iter().zip(parsed.series.iter()) {
        assert_eq!(a.values(), b.values());
    }
}

#[test]
fn engine_survives_every_series_failing_at_some_point() {
    // Rotate a failure through all series; every missing value must either be
    // imputed or explicitly skipped, never silently dropped.
    let width = 4;
    let config = TkcmConfig::builder()
        .window_length(600)
        .pattern_length(8)
        .anchor_count(3)
        .reference_count(2)
        .build()
        .unwrap();
    let mut engine = TkcmEngine::new(width, config, Catalog::ring_neighbours(width)).unwrap();

    let mut imputed = 0usize;
    let mut skipped = 0usize;
    for t in 0..600usize {
        let failing = (t / 50) % width;
        let values: Vec<Option<f64>> = (0..width)
            .map(|s| {
                let v = ((t as f64 + 7.0 * s as f64) * 0.05).sin() * 10.0;
                if t > 100 && s == failing {
                    None
                } else {
                    Some(v)
                }
            })
            .collect();
        let outcome = engine
            .process_tick(&StreamTick::new(Timestamp::new(t as i64), values))
            .expect("tick accepted");
        imputed += outcome.imputations.len();
        skipped += outcome.skipped.len();
    }
    assert_eq!(imputed + skipped, 499);
    assert!(imputed > 450, "imputed {imputed}, skipped {skipped}");
    assert_eq!(engine.imputations_performed(), imputed);
}
